"""Full-grid analytic sweep (the ``repro sweep`` command, BENCH_PR8).

Everything Figure 3 does, minus the simulator: price the whole
``(throughput x latency x delay x site)`` space with the vectorized
closed-form model (:mod:`repro.core.analysis_vec`) instead of replaying
page loads through the DES.  The DES does ~10^2 visits/s; the vector
engine does ~10^6 visit-estimates/s, which turns "a cell of Figure 3"
into "the entire figure, every delay, the full corpus" at interactive
latency — the substrate the population-scale traffic engine sweeps
over.

The analytic model is only trustworthy *because* it is continuously
validated against the simulator: :func:`validate_sweep` re-runs a
seeded sampled subgrid through ``measure_pair`` and gates on the
Spearman rank correlation between analytic and simulated warm PLTs —
the same ablation the bench suite runs, but automated per sweep
(``repro sweep --validate``).

Three artifacts come out:

- a Figure-3-style reduction grid (catalyst vs standard, mean over
  sites and delays) plus a revisit-delay series at the headline
  condition,
- an optional validation report (rank correlation on the subgrid),
- a manifest-stamped ``analytic_sweep`` bench payload for the
  ``BENCH_*.json`` trajectory, with visit-estimates/s floors
  (>= 10^6/s vectorized, >= 10^4/s pure-Python fallback).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.analysis_vec import (VectorAnalyticModel, compile_site,
                                 numpy_available)
from ..core.modes import CachingMode
from ..netsim.clock import format_duration
from ..netsim.conditions import (FIGURE3_LATENCIES_MS,
                                 FIGURE3_THROUGHPUTS_MBPS)
from ..netsim.link import NetworkConditions
from ..obs.manifest import build_manifest, stamp
from ..workload.corpus import Corpus, make_corpus
from .figure3 import HEADLINE_CONDITION, PAPER_REVISIT_DELAYS_S
from .report import format_grid, format_pct, format_table
from .stats import spearman

__all__ = ["SweepResult", "run_sweep", "ValidationResult",
           "validate_sweep", "AnalyticBenchResult", "run_analytic_bench",
           "analytic_bench_payload", "VECTORIZED_FLOOR_PER_S",
           "FALLBACK_FLOOR_PER_S"]

#: visit-estimates/s floors the BENCH_PR8 lane asserts (issue 8)
VECTORIZED_FLOOR_PER_S = 1_000_000.0
FALLBACK_FLOOR_PER_S = 10_000.0

_MODES = (CachingMode.STANDARD, CachingMode.CATALYST)


@dataclass
class SweepResult:
    """The full analytic grid, reduced to the Figure 3 shape."""

    throughputs_mbps: tuple[float, ...]
    latencies_ms: tuple[float, ...]
    delays_s: tuple[float, ...]
    sites: int
    backend: str
    #: mean catalyst-vs-standard reduction per (throughput, latency),
    #: averaged over sites and delays — rows follow throughputs_mbps
    reduction_grid: list[list[float]]
    #: reduction per delay at the headline condition (60 Mbps / 40 ms,
    #: or the nearest grid cell), averaged over sites
    delay_series: list[tuple[float, float]]
    #: total visit estimates priced (sites x conditions x modes x delays)
    estimates: int
    elapsed_s: float

    @property
    def estimates_per_s(self) -> float:
        return self.estimates / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def overall_mean_reduction(self) -> float:
        cells = [value for row in self.reduction_grid for value in row]
        return sum(cells) / len(cells) if cells else 0.0

    def cell(self, mbps: float, rtt_ms: float) -> float:
        ti = self.throughputs_mbps.index(mbps)
        li = self.latencies_ms.index(rtt_ms)
        return self.reduction_grid[ti][li]

    def format(self) -> str:
        grid = format_grid(
            row_labels=[f"{t:g} Mbps" for t in self.throughputs_mbps],
            col_labels=[f"{l:g} ms" for l in self.latencies_ms],
            values=[[format_pct(v) for v in row]
                    for row in self.reduction_grid],
            corner="PLT reduction")
        series = format_table(
            ["revisit delay", "PLT reduction @" + self._headline_label()],
            [[format_duration(delay), format_pct(value)]
             for delay, value in self.delay_series])
        return (grid + "\n"
                + f"overall mean: {format_pct(self.overall_mean_reduction)}"
                + f"  (analytic, {self.sites} sites, "
                + f"{len(self.delays_s)} delays, {self.backend} backend, "
                + f"{self.estimates:,} estimates "
                + f"in {self.elapsed_s:.2f}s)\n\n" + series)

    def _headline_label(self) -> str:
        mbps, rtt = _headline_cell(self.throughputs_mbps,
                                   self.latencies_ms)
        return f"{mbps:g}Mbps/{rtt:g}ms"


def _headline_cell(throughputs: Sequence[float],
                   latencies: Sequence[float]) -> tuple[float, float]:
    """The grid cell nearest the paper's 60 Mbps / 40 ms headline."""
    mbps = min(throughputs,
               key=lambda t: abs(t - HEADLINE_CONDITION.downlink_mbps))
    rtt = min(latencies,
              key=lambda l: abs(l - HEADLINE_CONDITION.rtt_ms))
    return mbps, rtt


def run_sweep(corpus: Optional[Corpus] = None,
              throughputs_mbps: Sequence[float] = FIGURE3_THROUGHPUTS_MBPS,
              latencies_ms: Sequence[float] = FIGURE3_LATENCIES_MS,
              delays_s: Sequence[float] = PAPER_REVISIT_DELAYS_S,
              sites: Optional[int] = None,
              backend: str = "auto",
              config=None) -> SweepResult:
    """Price the full grid analytically.

    Mirrors :func:`~repro.experiments.figure3.run_figure3`'s sampling
    knobs (``sites`` subsamples with the same seed) so analytic and
    simulated grids are comparable site-for-site.  Churn enters the
    closed form through the generated change periods, so no
    frozen/churn toggle exists here — the model *is* the expectation
    over churn.
    """
    if corpus is None:
        corpus = make_corpus()
    if sites is not None and sites < len(corpus):
        corpus = corpus.sample(sites, seed=7)
    throughputs = tuple(float(t) for t in throughputs_mbps)
    latencies = tuple(float(l) for l in latencies_ms)
    delays = tuple(float(d) for d in delays_s)
    conditions_list = [NetworkConditions.of(mbps, rtt)
                       for mbps in throughputs for rtt in latencies]
    model = VectorAnalyticModel(config=config, backend=backend)
    site_list = list(corpus)
    started = time.perf_counter()
    plts = model.sweep(site_list, _MODES, delays, conditions_list)
    elapsed = time.perf_counter() - started

    n_sites = len(site_list)
    n_lat = len(latencies)

    def mean_reduction(ci: int, di_filter=None) -> float:
        """Mean (standard - catalyst)/standard over sites (x delays)."""
        total, count = 0.0, 0
        for si in range(n_sites):
            for di in range(len(delays)):
                if di_filter is not None and di != di_filter:
                    continue
                standard = float(plts[si][ci][0][di])
                catalyst = float(plts[si][ci][1][di])
                if standard > 0:
                    total += (standard - catalyst) / standard
                    count += 1
        return total / count if count else 0.0

    reduction_grid = [
        [mean_reduction(ti * n_lat + li) for li in range(n_lat)]
        for ti in range(len(throughputs))]
    head_mbps, head_rtt = _headline_cell(throughputs, latencies)
    head_ci = (throughputs.index(head_mbps) * n_lat
               + latencies.index(head_rtt))
    delay_series = [(delay, mean_reduction(head_ci, di_filter=di))
                    for di, delay in enumerate(delays)]
    estimates = n_sites * len(conditions_list) * len(_MODES) * len(delays)
    return SweepResult(
        throughputs_mbps=throughputs, latencies_ms=latencies,
        delays_s=delays, sites=n_sites, backend=model.backend,
        reduction_grid=reduction_grid, delay_series=delay_series,
        estimates=estimates, elapsed_s=elapsed)


# ---------------------------------------------------------------------------
# Validation: analytic vs DES on a seeded subgrid
# ---------------------------------------------------------------------------

@dataclass
class ValidationResult:
    """Analytic-vs-simulated agreement on a sampled subgrid."""

    rho: float
    min_rho: float
    rows: list[tuple[str, str, str, float, float, float]] = \
        field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def passed(self) -> bool:
        return self.rho > self.min_rho

    def format(self) -> str:
        table = format_table(
            ["site", "condition", "mode", "delay", "analytic ms",
             "simulated ms"],
            [[origin, cond, mode, format_duration(delay),
              f"{analytic * 1000:.0f}", f"{simulated * 1000:.0f}"]
             for origin, cond, mode, delay, analytic, simulated
             in self.rows[:24]])
        verdict = "PASS" if self.passed else "FAIL"
        return (table
                + f"\n\nSpearman rank correlation (n={len(self.rows)}): "
                + f"{self.rho:.3f}  (floor {self.min_rho:.2f}) "
                + f"[{verdict}]  ({self.elapsed_s:.1f}s of DES)")


def validate_sweep(corpus: Optional[Corpus] = None,
                   sites: int = 4,
                   seed: int = 41,
                   delays_s: Sequence[float] = (3600.0, 86400.0),
                   conditions_list: Optional[
                       Sequence[NetworkConditions]] = None,
                   min_rho: float = 0.85,
                   backend: str = "auto") -> ValidationResult:
    """Re-run a seeded subgrid through the DES and rank-correlate.

    The subgrid is sampled deterministically (``corpus.sample(sites,
    seed)``), so a validation failure is reproducible by rerunning the
    same command.  Gate: Spearman rho of (analytic, simulated) warm PLT
    across all (site, condition, mode, delay) rows must exceed
    ``min_rho`` — the same 0.85 floor the ablation bench uses.
    """
    from .harness import measure_pair  # deferred: pulls in the DES stack

    if corpus is None:
        corpus = make_corpus()
    site_list = list(corpus.sample(min(sites, len(corpus)), seed=seed))
    if conditions_list is None:
        conditions_list = [NetworkConditions.of(mbps, rtt)
                           for mbps in (8.0, 60.0) for rtt in (10.0, 100.0)]
    delays = tuple(float(d) for d in delays_s)
    model = VectorAnalyticModel(backend=backend)

    started = time.perf_counter()
    rows = []
    for site in site_list:
        analytic = model.batch_plt(compile_site(site), _MODES, delays,
                                   conditions_list)
        for ci, conditions in enumerate(conditions_list):
            for mi, mode in enumerate(_MODES):
                for di, delay in enumerate(delays):
                    simulated_ms = measure_pair(
                        site, mode, conditions, delay).warm_plt_ms
                    rows.append((site.origin, conditions.describe(),
                                 mode.value, delay,
                                 float(analytic[ci][mi][di]),
                                 simulated_ms / 1000.0))
    elapsed = time.perf_counter() - started
    rho = spearman([row[4] for row in rows], [row[5] for row in rows])
    return ValidationResult(rho=rho, min_rho=min_rho, rows=rows,
                            elapsed_s=elapsed)


# ---------------------------------------------------------------------------
# Bench lane: visit-estimates/s (the BENCH_PR8 artifact)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AnalyticBenchResult:
    """Throughput of both backends over the same compiled workload."""

    sites: int
    seed: int
    conditions: int
    modes: int
    delays: int
    #: estimates/s, best of N rounds; None when numpy is unavailable
    vectorized_per_s: Optional[float]
    fallback_per_s: float
    #: sites actually priced per fallback round (subsampled for time)
    fallback_sites: int
    rounds: int
    elapsed_s: float

    @property
    def estimates_per_site(self) -> int:
        return self.conditions * self.modes * self.delays

    @property
    def meets_floors(self) -> bool:
        vec_ok = (self.vectorized_per_s is None
                  or self.vectorized_per_s >= VECTORIZED_FLOOR_PER_S)
        return vec_ok and self.fallback_per_s >= FALLBACK_FLOOR_PER_S


def run_analytic_bench(sites: int = 40, seed: int = 2024,
                       rounds: int = 5) -> AnalyticBenchResult:
    """Measure both backends on a Figure-3-scale batched grid.

    Workload: ``sites`` corpus sites x 20 conditions x 2 modes x 25
    delays (a delay-dense Figure 3).  Best-of-``rounds`` wall clock, so
    the number measures the engine rather than scheduler noise — same
    convention as the simcore lane.  The pure-Python fallback prices a
    deterministic site subset (it is ~30x slower; the rate is per
    estimate, so the subset does not bias it).
    """
    corpus = make_corpus(size=sites, seed=seed)
    compiled = [compile_site(site) for site in corpus]
    delays = [30.0 + 60.0 * i for i in range(25)]
    conditions_list = [NetworkConditions.of(mbps, rtt)
                       for mbps in FIGURE3_THROUGHPUTS_MBPS
                       for rtt in FIGURE3_LATENCIES_MS]
    per_site = len(conditions_list) * len(_MODES) * len(delays)
    started = time.perf_counter()

    def best_rate(model: VectorAnalyticModel, batch) -> float:
        model.batch_plt(batch[0], _MODES, delays, conditions_list)  # warm-up
        best = float("inf")
        for _ in range(rounds):
            t0 = time.perf_counter()
            for comp in batch:
                model.batch_plt(comp, _MODES, delays, conditions_list)
            best = min(best, time.perf_counter() - t0)
        return per_site * len(batch) / best

    vectorized = None
    if numpy_available():
        vectorized = best_rate(VectorAnalyticModel(backend="numpy"),
                               compiled)
    fallback_batch = compiled[:max(1, len(compiled) // 10)]
    fallback = best_rate(VectorAnalyticModel(backend="python"),
                         fallback_batch)
    return AnalyticBenchResult(
        sites=len(compiled), seed=seed, conditions=len(conditions_list),
        modes=len(_MODES), delays=len(delays),
        vectorized_per_s=vectorized, fallback_per_s=fallback,
        fallback_sites=len(fallback_batch), rounds=rounds,
        elapsed_s=time.perf_counter() - started)


def format_analytic_bench(result: AnalyticBenchResult) -> str:
    rows = []
    if result.vectorized_per_s is not None:
        rows.append(["vectorized (numpy)",
                     f"{result.vectorized_per_s:,.0f}",
                     f"{VECTORIZED_FLOOR_PER_S:,.0f}",
                     f"{result.sites}"])
    rows.append(["fallback (pure python)",
                 f"{result.fallback_per_s:,.0f}",
                 f"{FALLBACK_FLOOR_PER_S:,.0f}",
                 f"{result.fallback_sites}"])
    table = format_table(
        ["backend", "visit-estimates/s", "floor", "sites"], rows)
    verdict = "floors met" if result.meets_floors else "BELOW FLOOR"
    return (table + f"\n{result.estimates_per_site:,} estimates/site "
            f"(cond x mode x delay), best of {result.rounds} rounds "
            f"-> {verdict}")


def analytic_bench_payload(result: AnalyticBenchResult) -> dict:
    """Machine-readable ``analytic_sweep`` record for the trajectory.

    The grid shape and workload seed are the config identity; rounds
    are sampling effort.  The backend is *not* identity: a no-numpy
    artifact is still the same experiment (its vectorized key is simply
    absent, which the gate reports as "not comparable" without failing).
    """
    sweep_metrics = {
        "estimates_per_s_fallback": round(result.fallback_per_s, 1),
    }
    if result.vectorized_per_s is not None:
        sweep_metrics["estimates_per_s_vectorized"] = round(
            result.vectorized_per_s, 1)
    payload = {
        "bench": "analytic_sweep",
        "schema_version": 1,
        "params": {
            "sites": result.sites,
            "conditions": result.conditions,
            "modes": result.modes,
            "delays": result.delays,
            "fallback_sites": result.fallback_sites,
        },
        "analytic_sweep": sweep_metrics,
        "floors": {
            "estimates_per_s_vectorized": VECTORIZED_FLOOR_PER_S,
            "estimates_per_s_fallback": FALLBACK_FLOOR_PER_S,
        },
        "meets_floors": result.meets_floors,
    }
    return stamp(payload, build_manifest(
        config={"bench": "analytic_sweep", "sites": result.sites,
                "seed": result.seed, "conditions": result.conditions,
                "modes": result.modes, "delays": result.delays},
        sampling={"rounds": result.rounds},
        seeds=[result.seed],
        wall_time_s=result.elapsed_s or None,
    ))
