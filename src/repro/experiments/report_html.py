"""Bundling the regenerated figures into one self-contained HTML report.

``pytest benchmarks/ --benchmark-only`` drops each figure/table as a text
artifact under ``benchmarks/results/``; this module folds them into a
single static HTML page (no scripts, no external assets) for sharing.

    python -m repro report --out report.html
"""

from __future__ import annotations

import html
import json
import pathlib
from typing import Optional

__all__ = ["build_report", "write_report", "bench_trajectory_rows"]

#: presentation order and human titles; artifacts not listed are appended
#: alphabetically at the end
_SECTIONS: tuple[tuple[str, str], ...] = (
    ("headline_claim", "Headline: the ~30 % claim"),
    ("figure3_full", "Figure 3 — full grid"),
    ("figure3_grid", "Figure 3 — bench subsample"),
    ("figure3_delay_series", "Figure 3 — revisit-delay series"),
    ("figure1_timelines", "Figure 1 — worked-example timelines"),
    ("figure1_rtts", "Figure 1 — round trips eliminated"),
    ("motivation_stats", "§2.2 motivation statistics"),
    ("baseline_comparison", "§5 baseline comparison"),
    ("rdr_latency_profile", "RDR latency profile"),
    ("extreme_cache_staleness", "Extreme Cache stale-serve risk"),
    ("catalyst_staleness", "Catalyst vs standard staleness"),
    ("cross_page_navigation", "Cross-page navigation"),
    ("first_render", "First-render improvement"),
    ("user_weighted", "User-weighted benefit"),
    ("server_load", "Server-side load"),
    ("handover_schedules", "Mobility / handover schedules"),
    ("etag_config_overhead", "X-Etag-Config size overhead"),
    ("map_digest_savings", "Map-digest savings"),
    ("injection_overhead", "Injected artifact sizes"),
    ("session_footprint", "Session-recording footprint"),
    ("redundant_transfers", "Redundant transfer bytes"),
    ("ablation_churn", "Ablation: content churn"),
    ("ablation_developer", "Ablation: developer quality"),
    ("ablation_css_transitive", "Ablation: CSS-transitive stapling"),
    ("ablation_slow_start", "Ablation: TCP slow start"),
    ("ablation_http2", "Ablation: HTTP/2 transport"),
    ("ablation_push_cancel", "Ablation: push cancellation"),
    ("analytic_vs_des", "Analytic model vs simulator"),
    ("analytic_sweep", "Analytic sweep — full grid (vectorized)"),
    ("sweep_validation", "Analytic sweep — DES validation"),
    ("population_fleet", "Population fleet — analytic pricing"),
    ("population_fleet_bench", "Population fleet — bench floors"),
)

_STYLE = """
body { font-family: ui-monospace, Menlo, Consolas, monospace;
       max-width: 72rem; margin: 2rem auto; padding: 0 1rem;
       background: #101418; color: #d8dee6; }
h1 { font-size: 1.4rem; border-bottom: 1px solid #2c3440;
     padding-bottom: .5rem; }
h2 { font-size: 1.05rem; color: #8fd0ff; margin-top: 2rem; }
pre { background: #161c24; border: 1px solid #2c3440; border-radius: 6px;
      padding: .8rem 1rem; overflow-x: auto; font-size: .82rem;
      line-height: 1.35; }
p.meta { color: #7b8494; font-size: .85rem; }
"""


#: gated metric paths per bench family (mirrors compare_bench.BENCH_KEYS —
#: that script must stay standalone, so the mapping is duplicated here)
_BENCH_KEYS: dict[str, tuple[str, ...]] = {
    "server_hot_path": ("throughput_rps.cached_warm",),
    "simcore": ("simcore.events_per_s", "simcore.transfers_per_s",
                "simcore.visits_per_s"),
    "analytic_sweep": ("analytic_sweep.estimates_per_s_vectorized",
                       "analytic_sweep.estimates_per_s_fallback"),
    "population_fleet": (
        "population_fleet.analytic_visits_per_s_vectorized",
        "population_fleet.analytic_visits_per_s_fallback",
        "population_fleet.des_visits_per_s"),
}


def _lookup(payload: dict, dotted: str) -> Optional[float]:
    node = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return float(node) if isinstance(node, (int, float)) else None


def bench_trajectory_rows(results_dir: pathlib.Path) -> list[dict]:
    """One row per ``BENCH_*.json`` artifact, oldest first per family.

    Each row carries the artifact name, bench family, the gated metric
    values, and a manifest summary (short git rev, created time, worker
    count, wall seconds) — the report's perf-trajectory table.
    """
    rows = []
    for path in sorted(results_dir.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(payload, dict):
            continue
        family = payload.get("bench", "server_hot_path")
        metrics = {key: _lookup(payload, key)
                   for key in _BENCH_KEYS.get(family, ())}
        manifest = payload.get("manifest") or {}
        rows.append({
            "artifact": path.name,
            "bench": family,
            "metrics": {k: v for k, v in metrics.items() if v is not None},
            "git_rev": str(manifest.get("git_rev", "unknown"))[:10],
            "created_utc": manifest.get("created_utc", "unknown"),
            "workers": manifest.get("workers"),
            "wall_time_s": manifest.get("wall_time_s"),
        })
    rows.sort(key=lambda row: (row["bench"], row["artifact"]))
    return rows


def _bench_trajectory_text(results_dir: pathlib.Path) -> Optional[str]:
    """Plain-text trajectory table, or None when no artifacts exist."""
    rows = bench_trajectory_rows(results_dir)
    if not rows:
        return None
    from .report import format_table
    table_rows = []
    for row in rows:
        metrics = "  ".join(f"{key.split('.')[-1]}={value:,.1f}"
                            for key, value in row["metrics"].items())
        wall = (f"{row['wall_time_s']:.1f}s"
                if isinstance(row["wall_time_s"], (int, float)) else "—")
        table_rows.append([row["artifact"], row["bench"],
                           metrics or "—", row["git_rev"],
                           row["created_utc"],
                           row["workers"] if row["workers"] else "—", wall])
    return format_table(
        ["artifact", "bench", "gated metrics", "git rev", "created",
         "workers", "wall"], table_rows)


_SPARK_BLOCKS = " ▁▂▃▄▅▆▇█"


def _sparkline(values: list[float]) -> str:
    top = max(values) if values else 0.0
    if top <= 0:
        return " " * len(values)
    scale = len(_SPARK_BLOCKS) - 1
    return "".join(_SPARK_BLOCKS[round(value / top * scale)]
                   for value in values)


def _slo_timeline_text(results_dir: pathlib.Path) -> Optional[str]:
    """SLO verdicts + per-interval timelines from load-test artifacts.

    Scans every ``*.json`` whose payload says ``"bench": "load_test"``
    (the ``repro loadtest --out`` shape).  Renders the objective table
    when the run carried an SLO report, and an ok/shed sparkline over
    the zero-filled interval series either way.
    """
    blocks = []
    for path in sorted(results_dir.glob("*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(payload, dict) \
                or payload.get("bench") != "load_test":
            continue
        lines = [path.name]
        series = payload.get("series") or []
        if series:
            ok = [float(row.get("ok", 0)) for row in series]
            shed = [float(row.get("shed", 0)) for row in series]
            lines.append(f"  ok   per interval |{_sparkline(ok)}| "
                         f"peak {max(ok):,.0f}")
            lines.append(f"  shed per interval |{_sparkline(shed)}| "
                         f"peak {max(shed):,.0f}")
        slo = payload.get("slo")
        if isinstance(slo, dict):
            verdict = "PASS" if slo.get("passed") else "BREACH"
            lines.append(f"  SLO: {verdict}")
            for objective in slo.get("objectives", []):
                status = "BREACH" if objective.get("breached") else "ok"
                worst = (objective.get("worst") or {}).get("burn_rate")
                burn = (f", worst burn {worst:.2f}x"
                        if isinstance(worst, (int, float)) else "")
                lines.append(f"    [{status:6s}] "
                             f"{objective.get('name', '?')}{burn}")
        if len(lines) > 1:
            blocks.append("\n".join(lines))
    return "\n\n".join(blocks) if blocks else None


def _fleet_cohorts_text(results_dir: pathlib.Path) -> Optional[str]:
    """Per-cohort PLT percentiles from population-fleet run payloads.

    Scans every ``*.json`` whose payload says ``"bench":
    "population_fleet_run"`` (the ``repro fleet --out`` shape) and
    renders each cohort's per-mode p50/p90/p99 plus origin load, with
    the DES cross-check and validation verdict when the run carried
    them.
    """
    from .report import format_pct, format_table
    blocks = []
    for path in sorted(results_dir.glob("*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(payload, dict) \
                or payload.get("bench") != "population_fleet_run":
            continue
        lines = [f"{path.name}: {payload.get('users', '?'):,} users, "
                 f"{payload.get('population_visits', '?'):,} visits, "
                 f"{payload.get('backend', '?')} backend"]
        rows = []
        cohorts = payload.get("cohorts") or []
        for cohort in cohorts + [{"name": "fleet", "label": "",
                                  "modes": payload.get("fleet") or []}]:
            for index, mode in enumerate(cohort.get("modes", [])):
                rows.append([
                    cohort.get("name", "?") if index == 0 else "",
                    mode.get("mode", "?"),
                    f"{mode.get('p50_ms', 0):,.0f}",
                    f"{mode.get('p90_ms', 0):,.0f}",
                    f"{mode.get('p99_ms', 0):,.0f}",
                    f"{mode.get('origin_rps', 0):,.1f}",
                    format_pct(mode.get("hit_ratio", 0.0)),
                ])
        if rows:
            lines.append(format_table(
                ["cohort", "mode", "p50 ms", "p90 ms", "p99 ms",
                 "origin req/s", "hit"], rows))
        des = payload.get("des")
        if isinstance(des, dict):
            lines.append(f"  DES cross-check: {des.get('visits', 0)} "
                         f"sampled visits, "
                         f"{des.get('workers', '?')} worker(s)")
        validation = payload.get("validation")
        if isinstance(validation, dict):
            verdict = "PASS" if validation.get("passed") else "FAIL"
            lines.append(f"  validation: Spearman rho="
                         f"{validation.get('rho', 0):.3f} "
                         f"(gate >= {validation.get('min_rho', 0):g}) "
                         f"-> {verdict}")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks) if blocks else None


def build_report(results_dir: pathlib.Path,
                 title: str = "CacheCatalyst reproduction — results") -> str:
    """Render every ``*.txt`` artifact in ``results_dir`` into HTML."""
    artifacts: dict[str, str] = {}
    for path in sorted(results_dir.glob("*.txt")):
        artifacts[path.stem] = path.read_text()

    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        "<p class='meta'>regenerated by "
        "<code>pytest benchmarks/ --benchmark-only</code>; "
        f"{len(artifacts)} artifacts</p>",
    ]
    trajectory = _bench_trajectory_text(results_dir)
    if trajectory is not None:
        parts.append("<h2>Perf trajectory (BENCH_*.json)</h2>")
        parts.append("<p class='meta'>gated by "
                     "<code>benchmarks/compare_bench.py</code>; provenance "
                     "from each artifact's run manifest</p>")
        parts.append(f"<pre>{html.escape(trajectory.rstrip())}</pre>")
    slo_timeline = _slo_timeline_text(results_dir)
    if slo_timeline is not None:
        parts.append("<h2>Load-test SLOs &amp; timelines</h2>")
        parts.append("<p class='meta'>from <code>repro loadtest --slo "
                     "--out ...</code> artifacts: burn-rate verdicts and "
                     "per-interval ok/shed sparklines</p>")
        parts.append(f"<pre>{html.escape(slo_timeline.rstrip())}</pre>")
    fleet_cohorts = _fleet_cohorts_text(results_dir)
    if fleet_cohorts is not None:
        parts.append("<h2>Population fleet — per-cohort PLT "
                     "percentiles</h2>")
        parts.append("<p class='meta'>from <code>repro fleet --out ..."
                     "</code> payloads: per-cohort p50/p90/p99 by mode, "
                     "origin load, DES cross-check and the analytic-vs-"
                     "DES validation verdict</p>")
        parts.append(f"<pre>{html.escape(fleet_cohorts.rstrip())}</pre>")
    listed = set()
    for stem, heading in _SECTIONS:
        text = artifacts.get(stem)
        if text is None:
            continue
        listed.add(stem)
        parts.append(f"<h2>{html.escape(heading)}</h2>")
        parts.append(f"<pre>{html.escape(text.rstrip())}</pre>")
    for stem in sorted(set(artifacts) - listed):
        parts.append(f"<h2>{html.escape(stem)}</h2>")
        parts.append(f"<pre>{html.escape(artifacts[stem].rstrip())}</pre>")
    parts.append("</body></html>")
    return "\n".join(parts)


def write_report(results_dir: pathlib.Path,
                 out_path: pathlib.Path,
                 title: Optional[str] = None) -> pathlib.Path:
    """Build and write the report; returns the output path."""
    kwargs = {} if title is None else {"title": title}
    out_path.write_text(build_report(results_dir, **kwargs))
    return out_path
