"""Fault sweep: standard vs. Catalyst caching under injected faults.

The paper's evaluation assumes a clean network; this experiment asks
what happens on the networks the latency-constrained Internet actually
has — lossy links, resets, truncated bodies, stalled transfers — and
whether CacheCatalyst *degrades gracefully* rather than amplifying the
trouble.

Three sections:

1. **Sweep**: for each fault rate, load each site cold then warm in both
   STANDARD and CATALYST modes over a link carrying a mixed
   :class:`~repro.netsim.faults.FaultPlan` (half losses, a quarter
   resets, a quarter truncations).  Reported per cell: mean warm PLT,
   retries absorbed, failed resources, and whether every load completed.
2. **Acceptance**: the ISSUE criterion — at 5 % request loss on
   60 Mbps / 40 ms, both modes must complete every page load and
   Catalyst's mean warm PLT must not exceed standard's.
3. **Corrupted map**: a middlebox damages the ``X-Etag-Config`` header
   (truncation, garbage, partially-applicable entries, removal); the
   page must still load with the affected resources served via standard
   conditional revalidation.

Faults are decided by per-(seed, url, attempt) hashes, so STANDARD and
CATALYST face *identical* fault sequences for the requests they share —
paired sampling, not luck.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Callable, Optional, Sequence

from ..browser.engine import BrowserConfig
from ..browser.metrics import FetchSource
from ..core.catalyst import run_visit_sequence
from ..core.etag_config import ETAG_CONFIG_HEADER
from ..core.modes import CachingMode, ModeSetup, build_mode
from ..netsim.clock import DAY
from ..netsim.faults import FaultPlan
from ..netsim.link import NetworkConditions
from ..http.messages import Request, Response
from ..workload.sitegen import SiteSpec, freeze_site, generate_site
from .report import format_table

__all__ = ["FaultCell", "CorruptionCell", "FaultSweepResult",
           "HeaderCorruptingMiddlebox", "run_fault_sweep",
           "DEFAULT_FAULT_RATES", "CORRUPTION_MODES"]

DEFAULT_FAULT_RATES: tuple[float, ...] = (0.0, 0.02, 0.05, 0.10)

#: the ways :class:`HeaderCorruptingMiddlebox` can damage the map header
CORRUPTION_MODES: tuple[str, ...] = ("truncate", "garbage", "partial",
                                     "drop")

#: the ISSUE's acceptance condition: 5 % request loss
ACCEPTANCE_LOSS_RATE = 0.05


class HeaderCorruptingMiddlebox:
    """An origin-handler wrapper that damages ``X-Etag-Config`` headers.

    Models a middlebox (or a fault on the header-carrying packet) that
    mangles precisely the header CacheCatalyst depends on, leaving the
    rest of the response intact.  Modes:

    - ``truncate``: keep the first half of the JSON (unparseable),
    - ``garbage``: replace the value with non-JSON bytes,
    - ``partial``: keep valid JSON but break half the entries (they
      parse as non-string values and are dropped by the lenient codec),
    - ``drop``: remove the header entirely.
    """

    def __init__(self, handler: Callable[[Request, float], Response],
                 mode: str = "truncate", start_after: int = 0):
        if mode not in CORRUPTION_MODES:
            raise ValueError(f"unknown corruption mode: {mode!r}")
        self.handler = handler
        self.mode = mode
        #: map-bearing responses to let through clean first (0 = corrupt
        #: from the start; 1 = a clean cold visit, then damage mid-flight)
        self.start_after = start_after
        self.passed_clean = 0
        self.corrupted = 0

    def __call__(self, request: Request, at_time: float) -> Response:
        response = self.handler(request, at_time)
        raw = response.headers.get(ETAG_CONFIG_HEADER)
        if raw is None:
            return response
        if self.passed_clean < self.start_after:
            self.passed_clean += 1
            return response
        self.corrupted += 1
        if self.mode == "truncate":
            response.headers.set(ETAG_CONFIG_HEADER, raw[:len(raw) // 2])
        elif self.mode == "garbage":
            response.headers.set(ETAG_CONFIG_HEADER, "\x00!!not-json!!")
        elif self.mode == "partial":
            payload = json.loads(raw)
            for index, url in enumerate(list(payload)):
                if index % 2 == 1:
                    payload[url] = 0  # non-string: lenient codec drops it
            response.headers.set(
                ETAG_CONFIG_HEADER,
                json.dumps(payload, separators=(",", ":")))
        else:  # drop
            response.headers.remove(ETAG_CONFIG_HEADER)
        return response


@dataclass(frozen=True)
class FaultCell:
    """One (fault-rate, mode) aggregate of the sweep."""

    rate: float
    mode: str
    mean_warm_plt_ms: float
    mean_cold_plt_ms: float
    retries: int
    failed_resources: int
    loads: int
    crashed_loads: int

    @property
    def all_complete(self) -> bool:
        """Every load finished with every resource delivered."""
        return self.crashed_loads == 0 and self.failed_resources == 0


@dataclass(frozen=True)
class CorruptionCell:
    """One corrupted-map scenario (always CATALYST mode)."""

    corruption: str
    warm_plt_ms: float
    complete: bool
    sw_hits: int
    revalidated: int
    network: int


@dataclass
class FaultSweepResult:
    """Everything :func:`run_fault_sweep` measured."""

    conditions_label: str
    sites: int
    seed: int
    plan_label: str
    cells: list[FaultCell] = field(default_factory=list)
    acceptance: list[FaultCell] = field(default_factory=list)
    corruption: list[CorruptionCell] = field(default_factory=list)

    def cell(self, rate: float, mode: str) -> FaultCell:
        for cell in self.cells:
            if cell.rate == rate and cell.mode == mode:
                return cell
        raise KeyError(f"no cell rate={rate} mode={mode}")

    # -- the acceptance criterion -------------------------------------------
    @property
    def acceptance_holds(self) -> bool:
        """ISSUE criterion: at 5 % loss both modes complete every load
        and Catalyst's warm PLT does not exceed standard's."""
        if len(self.acceptance) != 2:
            return False
        by_mode = {cell.mode: cell for cell in self.acceptance}
        standard = by_mode[CachingMode.STANDARD.value]
        catalyst = by_mode[CachingMode.CATALYST.value]
        return (standard.all_complete and catalyst.all_complete
                and catalyst.mean_warm_plt_ms
                <= standard.mean_warm_plt_ms + 1e-9)

    def format(self) -> str:
        lines = [
            "Fault sweep: caching under injected network faults",
            f"conditions {self.conditions_label}, {self.sites} sites, "
            f"seed {self.seed}, warm visit after 1 day",
            f"fault mix per rate: {self.plan_label}",
            "",
            format_table(
                ["fault rate", "mode", "cold PLT (ms)", "warm PLT (ms)",
                 "retries", "failed res", "complete"],
                [[f"{cell.rate * 100:g}%", cell.mode,
                  f"{cell.mean_cold_plt_ms:.1f}",
                  f"{cell.mean_warm_plt_ms:.1f}",
                  cell.retries, cell.failed_resources,
                  "yes" if cell.all_complete else "NO"]
                 for cell in self.cells]),
        ]
        if self.acceptance:
            by_mode = {cell.mode: cell for cell in self.acceptance}
            standard = by_mode[CachingMode.STANDARD.value]
            catalyst = by_mode[CachingMode.CATALYST.value]
            lines += [
                "",
                f"Acceptance @ {ACCEPTANCE_LOSS_RATE * 100:g}% request "
                f"loss ({self.conditions_label}):",
                f"  standard: warm PLT {standard.mean_warm_plt_ms:.1f}ms, "
                f"complete={'yes' if standard.all_complete else 'NO'}",
                f"  catalyst: warm PLT {catalyst.mean_warm_plt_ms:.1f}ms, "
                f"complete={'yes' if catalyst.all_complete else 'NO'}",
                f"  catalyst <= standard and all loads complete: "
                f"{'PASS' if self.acceptance_holds else 'FAIL'}",
            ]
        if self.corruption:
            lines += [
                "",
                "Corrupted X-Etag-Config (catalyst warm visit; damaged "
                "resources fall back to conditional revalidation):",
                format_table(
                    ["corruption", "warm PLT (ms)", "complete", "sw-hits",
                     "revalidated", "network"],
                    [[cell.corruption, f"{cell.warm_plt_ms:.1f}",
                      "yes" if cell.complete else "NO", cell.sw_hits,
                      cell.revalidated, cell.network]
                     for cell in self.corruption]),
            ]
        return "\n".join(lines)


def _sweep_sites(count: int, seed: int) -> list[SiteSpec]:
    """Frozen synthetic sites (content fixed, like the paper's clones)."""
    return [freeze_site(generate_site(f"https://fault{index}.example",
                                      seed=seed * 1000 + index,
                                      median_resources=25))
            for index in range(count)]


def _resilient_config(timeout_s: float, max_retries: int) -> BrowserConfig:
    return BrowserConfig(request_timeout_s=timeout_s,
                         max_retries=max_retries)


def _run_pair(site_spec: SiteSpec, mode: CachingMode,
              conditions: NetworkConditions, plan: Optional[FaultPlan],
              base_config: BrowserConfig, delay_s: float):
    """(cold, warm) outcomes, or (None, None) when the load crashed."""
    setup: ModeSetup = build_mode(mode, site_spec, base_config)
    try:
        outcomes = run_visit_sequence(setup, conditions, [0.0, delay_s],
                                      fault_plan=plan)
    except Exception:
        return None, None
    return outcomes[0].result, outcomes[1].result


def _aggregate(rate: float, mode: CachingMode,
               results: list[tuple]) -> FaultCell:
    colds = [cold for cold, warm in results if cold is not None]
    warms = [warm for cold, warm in results if warm is not None]
    crashed = sum(1 for cold, warm in results if warm is None)

    def mean_plt(loads) -> float:
        return sum(r.plt_ms for r in loads) / len(loads) if loads else 0.0

    return FaultCell(
        rate=rate, mode=mode.value,
        mean_warm_plt_ms=mean_plt(warms),
        mean_cold_plt_ms=mean_plt(colds),
        retries=sum(r.retries_total for r in colds + warms),
        failed_resources=sum(r.failure_count for r in colds + warms),
        loads=len(results) * 2, crashed_loads=crashed)


def run_fault_sweep(rates: Sequence[float] = DEFAULT_FAULT_RATES,
                    mbps: float = 60.0, rtt_ms: float = 40.0,
                    sites: int = 4, seed: int = 0,
                    timeout_s: float = 3.0, max_retries: int = 4,
                    delay_s: float = DAY,
                    include_corruption: bool = True) -> FaultSweepResult:
    """Run the full sweep (see module docstring for the sections)."""
    conditions = NetworkConditions.of(mbps, rtt_ms,
                                      label=f"{mbps:g}Mbps/{rtt_ms:g}ms")
    specs = _sweep_sites(sites, seed)
    base_config = _resilient_config(timeout_s, max_retries)
    result = FaultSweepResult(
        conditions_label=conditions.describe(), sites=sites, seed=seed,
        plan_label="rate r = r/2 loss + r/4 reset + r/4 truncate, "
                   f"timeout {timeout_s:g}s, {max_retries} retries")

    modes = (CachingMode.STANDARD, CachingMode.CATALYST)
    for rate in rates:
        plan = FaultPlan.mixed(rate, seed=seed) if rate > 0 else None
        for mode in modes:
            pairs = [_run_pair(spec, mode, conditions, plan, base_config,
                               delay_s) for spec in specs]
            result.cells.append(_aggregate(rate, mode, pairs))

    # -- acceptance: pure request loss at the ISSUE's 5 % ------------------
    loss_plan = FaultPlan.request_loss(ACCEPTANCE_LOSS_RATE, seed=seed)
    for mode in modes:
        pairs = [_run_pair(spec, mode, conditions, loss_plan, base_config,
                           delay_s) for spec in specs]
        result.acceptance.append(
            _aggregate(ACCEPTANCE_LOSS_RATE, mode, pairs))

    # -- corrupted-map resilience (fault-free link, damaged header) --------
    if include_corruption:
        for corruption in CORRUPTION_MODES:
            result.corruption.append(_run_corruption(
                specs[0], conditions, corruption, base_config, delay_s))
    return result


def _run_corruption(site_spec: SiteSpec, conditions: NetworkConditions,
                    corruption: str, base_config: BrowserConfig,
                    delay_s: float) -> CorruptionCell:
    """Warm CATALYST visit with every map header damaged in-flight."""
    setup = build_mode(CachingMode.CATALYST, site_spec, base_config)
    middlebox = HeaderCorruptingMiddlebox(setup.handler, mode=corruption)
    damaged = ModeSetup(mode=setup.mode,
                        server=SimpleNamespace(handle=middlebox),
                        session=setup.session)
    try:
        outcomes = run_visit_sequence(damaged, conditions, [0.0, delay_s])
        warm = outcomes[1].result
        sources = {src.value: count
                   for src, count in warm.count_by_source().items()}
        return CorruptionCell(
            corruption=corruption, warm_plt_ms=warm.plt_ms,
            complete=warm.failure_count == 0,
            sw_hits=sources.get(FetchSource.SW_CACHE.value, 0),
            revalidated=sources.get(FetchSource.REVALIDATED.value, 0),
            network=sources.get(FetchSource.NETWORK.value, 0))
    except Exception:
        return CorruptionCell(corruption=corruption, warm_plt_ms=0.0,
                              complete=False, sw_hits=0, revalidated=0,
                              network=0)
