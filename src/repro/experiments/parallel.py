"""Multiprocess experiment sweeps.

The full Figure 3 grid is ~20 000 deterministic page-load pairs; each
pair is independent, so the sweep parallelizes perfectly.  This module
fans :func:`~repro.experiments.harness.measure_pair` out over a process
pool while keeping the output *identical* to the sequential runner
(work is deterministic and results are re-ordered canonically).

Used by the CLI for full-corpus runs; the benches stay sequential so
their timings mean something.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Optional, Sequence

from ..browser.engine import BrowserConfig
from ..core.modes import CachingMode
from ..netsim.link import NetworkConditions
from ..workload.corpus import Corpus
from ..workload.sitegen import SiteSpec
from .harness import GridResult, PairMeasurement, measure_pair

__all__ = ["run_grid_parallel"]


def _measure_one(args: tuple) -> PairMeasurement:
    site_spec, mode_value, mbps, rtt_ms, label, delay_s, config, audit = args
    conditions = NetworkConditions.of(mbps, rtt_ms, label=label)
    return measure_pair(site_spec, CachingMode(mode_value), conditions,
                        delay_s, base_config=config,
                        audit_staleness=audit)


def run_grid_parallel(sites: Corpus | Sequence[SiteSpec],
                      modes: Iterable[CachingMode],
                      conditions_list: Iterable[NetworkConditions],
                      delays_s: Iterable[float],
                      base_config: BrowserConfig = BrowserConfig(),
                      audit_staleness: bool = False,
                      max_workers: Optional[int] = None) -> GridResult:
    """Parallel drop-in for :func:`~repro.experiments.harness.run_grid`.

    Produces the same measurements in the same canonical order; only the
    wall time differs.
    """
    site_list = list(sites)
    conditions = list(conditions_list)
    mode_list = list(modes)
    delay_list = list(delays_s)
    tasks = []
    for cond in conditions:
        for mode in mode_list:
            for delay_s in delay_list:
                for site_spec in site_list:
                    tasks.append((site_spec, mode.value,
                                  cond.downlink_mbps, cond.rtt_ms,
                                  cond.describe(), delay_s, base_config,
                                  audit_staleness))
    if len(tasks) <= 1:
        return GridResult(measurements=[_measure_one(t) for t in tasks])
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        measurements = list(pool.map(_measure_one, tasks,
                                     chunksize=max(1, len(tasks) // 64)))
    return GridResult(measurements=measurements)
