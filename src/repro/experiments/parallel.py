"""Multiprocess experiment sweeps.

The full Figure 3 grid is ~20 000 deterministic page-load pairs; each
pair is independent, so the sweep parallelizes perfectly.  This module
fans :func:`~repro.experiments.harness.measure_pair` out over a process
pool while keeping the output *identical* to the sequential runner
(work is deterministic and results are re-ordered canonically).

Fleet observability: pass a :class:`repro.obs.MetricsRegistry` and each
worker folds its chunk's measurements into a private registry
(``fleet.*`` PLT histograms, hit-source counters, retry counts), whose
portable dump rides back with the chunk results and merges into the
caller's registry — so a parallel sweep reports aggregate percentiles
instead of discarding every worker's distribution.  Histogram merging
is exact while the pooled sample count fits the raw-sample cap, and
within the sketch's documented relative-error bound beyond it.  The
parent logs one heartbeat per finished chunk (worker pid, pairs done,
chunk wall time), visible during long fan-outs at the debug level.

Used by the CLI for full-corpus runs; the benches stay sequential so
their timings mean something.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Optional, Sequence

from ..browser.engine import BrowserConfig
from ..core.modes import CachingMode
from ..netsim.link import NetworkConditions
from ..obs.log import get_logger
from ..obs.metrics import MetricsRegistry
from ..workload.corpus import Corpus
from ..workload.sitegen import SiteSpec
from .harness import (GridResult, PairMeasurement, measure_pair,
                      record_fleet_metrics)

__all__ = ["run_grid_parallel"]

log = get_logger("experiments.parallel")


def _warm_worker() -> None:
    """Pool initializer: pre-import the hot simulation stack.

    Paying the import cost once per worker (instead of lazily inside the
    first task) keeps every mapped chunk on the fast path, and makes the
    per-process parse/render caches live for the worker's whole lifetime
    rather than being rebuilt per cold module load.
    """
    import repro.browser.engine   # noqa: F401  (pulls html.parser/css)
    import repro.core.catalyst    # noqa: F401  (server + cache stack)
    import repro.experiments.harness  # noqa: F401
    import repro.netsim.link      # noqa: F401
    import repro.workload.sitegen  # noqa: F401


def _chunksize(n_tasks: int, max_workers: Optional[int]) -> int:
    """Chunk so each worker sees several batches (load balance) without
    paying per-task IPC for thousands of tiny submissions."""
    workers = max_workers or os.cpu_count() or 1
    return max(1, n_tasks // (workers * 8))


def _measure_one(args: tuple) -> PairMeasurement:
    site_spec, mode_value, mbps, rtt_ms, label, delay_s, config, audit = args
    conditions = NetworkConditions.of(mbps, rtt_ms, label=label)
    return measure_pair(site_spec, CachingMode(mode_value), conditions,
                        delay_s, base_config=config,
                        audit_staleness=audit)


def _measure_chunk(args: tuple) -> tuple:
    """One worker batch: measurements plus (optionally) a metrics dump.

    Returns ``(measurements, metrics_dump_or_None, pid, chunk_wall_s)``.
    The dump is the worker-side registry's portable state — plain
    dicts, cheap to pickle — never live instruments.
    """
    want_metrics, tasks = args
    start = time.perf_counter()
    measurements = [_measure_one(task) for task in tasks]
    dump = None
    if want_metrics:
        shard = MetricsRegistry()
        record_fleet_metrics(measurements, shard)
        dump = shard.dump()
    return measurements, dump, os.getpid(), time.perf_counter() - start


def run_grid_parallel(sites: Corpus | Sequence[SiteSpec],
                      modes: Iterable[CachingMode],
                      conditions_list: Iterable[NetworkConditions],
                      delays_s: Iterable[float],
                      base_config: Optional[BrowserConfig] = None,
                      audit_staleness: bool = False,
                      max_workers: Optional[int] = None,
                      metrics: Optional[MetricsRegistry] = None
                      ) -> GridResult:
    """Parallel drop-in for :func:`~repro.experiments.harness.run_grid`.

    Produces the same measurements in the same canonical order; only the
    wall time differs.  With ``metrics``, worker-shard registries merge
    into it as chunks finish (plus per-worker heartbeat gauges:
    ``fleet.workers``, ``fleet.worker.<pid>.pairs``).
    ``base_config=None`` means a fresh default per call.
    """
    if base_config is None:
        base_config = BrowserConfig()
    site_list = list(sites)
    conditions = list(conditions_list)
    mode_list = list(modes)
    delay_list = list(delays_s)
    tasks = []
    for cond in conditions:
        for mode in mode_list:
            for delay_s in delay_list:
                for site_spec in site_list:
                    tasks.append((site_spec, mode.value,
                                  cond.downlink_mbps, cond.rtt_ms,
                                  cond.describe(), delay_s, base_config,
                                  audit_staleness))
    if len(tasks) <= 1:
        measurements = [_measure_one(task) for task in tasks]
        if metrics is not None:
            record_fleet_metrics(measurements, metrics)
        return GridResult(measurements=measurements)
    size = _chunksize(len(tasks), max_workers)
    chunks = [(metrics is not None, tasks[i:i + size])
              for i in range(0, len(tasks), size)]
    measurements: list[PairMeasurement] = []
    worker_pairs: dict[int, int] = {}
    with ProcessPoolExecutor(max_workers=max_workers,
                             initializer=_warm_worker) as pool:
        # map() yields chunk results in canonical order as they finish,
        # so measurement order matches run_grid exactly while heartbeat
        # and merge bookkeeping happen incrementally.
        for chunk_result in pool.map(_measure_chunk, chunks):
            chunk_measurements, dump, pid, chunk_s = chunk_result
            measurements.extend(chunk_measurements)
            if metrics is None:
                continue
            metrics.merge(dump)
            worker_pairs[pid] = (worker_pairs.get(pid, 0)
                                 + len(chunk_measurements))
            metrics.gauge("fleet.workers").set(len(worker_pairs))
            metrics.gauge(f"fleet.worker.{pid}.pairs") \
                .set(worker_pairs[pid])
            log.debug("worker-heartbeat", pid=pid,
                      pairs=worker_pairs[pid],
                      chunk_s=round(chunk_s, 3),
                      done=len(measurements), total=len(tasks))
    return GridResult(measurements=measurements)
