"""Multiprocess experiment sweeps.

The full Figure 3 grid is ~20 000 deterministic page-load pairs; each
pair is independent, so the sweep parallelizes perfectly.  This module
fans :func:`~repro.experiments.harness.measure_pair` out over a process
pool while keeping the output *identical* to the sequential runner
(work is deterministic and results are re-ordered canonically).

Used by the CLI for full-corpus runs; the benches stay sequential so
their timings mean something.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, Optional, Sequence

from ..browser.engine import BrowserConfig
from ..core.modes import CachingMode
from ..netsim.link import NetworkConditions
from ..workload.corpus import Corpus
from ..workload.sitegen import SiteSpec
from .harness import GridResult, PairMeasurement, measure_pair

__all__ = ["run_grid_parallel"]


def _warm_worker() -> None:
    """Pool initializer: pre-import the hot simulation stack.

    Paying the import cost once per worker (instead of lazily inside the
    first task) keeps every mapped chunk on the fast path, and makes the
    per-process parse/render caches live for the worker's whole lifetime
    rather than being rebuilt per cold module load.
    """
    import repro.browser.engine   # noqa: F401  (pulls html.parser/css)
    import repro.core.catalyst    # noqa: F401  (server + cache stack)
    import repro.experiments.harness  # noqa: F401
    import repro.netsim.link      # noqa: F401
    import repro.workload.sitegen  # noqa: F401


def _chunksize(n_tasks: int, max_workers: Optional[int]) -> int:
    """Chunk so each worker sees several batches (load balance) without
    paying per-task IPC for thousands of tiny submissions."""
    workers = max_workers or os.cpu_count() or 1
    return max(1, n_tasks // (workers * 8))


def _measure_one(args: tuple) -> PairMeasurement:
    site_spec, mode_value, mbps, rtt_ms, label, delay_s, config, audit = args
    conditions = NetworkConditions.of(mbps, rtt_ms, label=label)
    return measure_pair(site_spec, CachingMode(mode_value), conditions,
                        delay_s, base_config=config,
                        audit_staleness=audit)


def run_grid_parallel(sites: Corpus | Sequence[SiteSpec],
                      modes: Iterable[CachingMode],
                      conditions_list: Iterable[NetworkConditions],
                      delays_s: Iterable[float],
                      base_config: BrowserConfig = BrowserConfig(),
                      audit_staleness: bool = False,
                      max_workers: Optional[int] = None) -> GridResult:
    """Parallel drop-in for :func:`~repro.experiments.harness.run_grid`.

    Produces the same measurements in the same canonical order; only the
    wall time differs.
    """
    site_list = list(sites)
    conditions = list(conditions_list)
    mode_list = list(modes)
    delay_list = list(delays_s)
    tasks = []
    for cond in conditions:
        for mode in mode_list:
            for delay_s in delay_list:
                for site_spec in site_list:
                    tasks.append((site_spec, mode.value,
                                  cond.downlink_mbps, cond.rtt_ms,
                                  cond.describe(), delay_s, base_config,
                                  audit_staleness))
    if len(tasks) <= 1:
        return GridResult(measurements=[_measure_one(t) for t in tasks])
    with ProcessPoolExecutor(max_workers=max_workers,
                             initializer=_warm_worker) as pool:
        measurements = list(pool.map(_measure_one, tasks,
                                     chunksize=_chunksize(len(tasks),
                                                          max_workers)))
    return GridResult(measurements=measurements)
