"""Figure 1: the paper's worked example, reproduced end to end.

The page: ``index.htm`` links ``a.css`` and ``b.js``; evaluating ``b.js``
fetches ``c.js``; evaluating ``c.js`` fetches ``d.jpg``.

Headers (as in the figure): ``a.css`` max-age=1 week, ``b.js`` no-cache,
``c.js`` max-age=1 day, ``d.jpg`` max-age=1 hour.  On a revisit two hours
later only ``d.jpg`` has actually changed.

The three panels:

- (a) cold first visit — every resource pays RTT + download,
- (b) status-quo revisit — a.css and c.js fresh; b.js revalidates (304,
  an RTT for nothing); d.jpg expired and changed (full fetch),
- (c) CacheCatalyst revisit — unchanged resources served instantly from
  the SW cache; only d.jpg (changed) and the base HTML touch the network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..browser.engine import BrowserConfig
from ..browser.metrics import PageLoadResult
from ..core.catalyst import run_visit_sequence
from ..core.modes import CachingMode, build_mode
from ..html.parser import ResourceKind
from ..netsim.clock import DAY, HOUR, WEEK
from ..netsim.link import NetworkConditions
from ..workload.headers_model import HeaderPolicy
from ..workload.sitegen import PageSpec, ResourceSpec, SiteSpec

__all__ = ["build_figure1_site", "run_figure1", "Figure1Panels",
           "FIGURE1_REVISIT_DELAY_S"]

FIGURE1_REVISIT_DELAY_S = 2 * HOUR

#: d.jpg changes 1.5 h after the first visit — inside the 2 h revisit gap
_DJPG_CHANGE_S = 1.5 * HOUR

_NEVER = 10 * 365 * DAY  # change period standing in for "doesn't change"


def build_figure1_site() -> SiteSpec:
    """The exact five-resource page of Figure 1."""
    a_css = ResourceSpec(
        url="/a.css", kind=ResourceKind.STYLESHEET, size_bytes=15_000,
        policy=HeaderPolicy(mode="max-age", ttl_s=1 * WEEK),
        change_period_s=_NEVER, content_seed=101, discovered_via="html",
        blocking=True, fixed_change_times=())
    b_js = ResourceSpec(
        url="/b.js", kind=ResourceKind.SCRIPT, size_bytes=25_000,
        policy=HeaderPolicy(mode="no-cache"),
        change_period_s=_NEVER, content_seed=102, discovered_via="html",
        children=("/c.js",), blocking=True, fixed_change_times=())
    c_js = ResourceSpec(
        url="/c.js", kind=ResourceKind.SCRIPT, size_bytes=18_000,
        policy=HeaderPolicy(mode="max-age", ttl_s=1 * DAY),
        change_period_s=_NEVER, content_seed=103, discovered_via="js",
        parent="/b.js", children=("/d.jpg",), blocking=False,
        fixed_change_times=())
    d_jpg = ResourceSpec(
        url="/d.jpg", kind=ResourceKind.IMAGE, size_bytes=40_000,
        policy=HeaderPolicy(mode="max-age", ttl_s=1 * HOUR),
        change_period_s=_NEVER, content_seed=104, discovered_via="js",
        parent="/c.js", blocking=False,
        fixed_change_times=(_DJPG_CHANGE_S,))
    page = PageSpec(
        url="/index.html", html_size_bytes=12_000,
        html_change_period_s=_NEVER, html_content_seed=100,
        html_refs=("/a.css", "/b.js"),
        resources={spec.url: spec for spec in (a_css, b_js, c_js, d_jpg)})
    return SiteSpec(origin="https://figure1.example", seed=1,
                    pages={"/index.html": page})


@dataclass
class Figure1Panels:
    """The three timelines of Figure 1."""

    cold: PageLoadResult              # (a) first visit
    standard_revisit: PageLoadResult  # (b) status quo, +2 h
    catalyst_revisit: PageLoadResult  # (c) proposed, +2 h

    def format(self) -> str:
        return "\n\n".join([
            "(a) first visit (cold cache)\n" + self.cold.describe(),
            "(b) revisit +2h, current caching\n"
            + self.standard_revisit.describe(),
            "(c) revisit +2h, CacheCatalyst\n"
            + self.catalyst_revisit.describe(),
        ])


def run_figure1(conditions: NetworkConditions = NetworkConditions.of(60, 40),
                base_config: Optional[BrowserConfig] = None
                ) -> Figure1Panels:
    """Simulate all three panels; deterministic.

    ``base_config=None`` means a fresh default per call.
    """
    if base_config is None:
        base_config = BrowserConfig()
    site = build_figure1_site()
    times = [0.0, FIGURE1_REVISIT_DELAY_S]

    standard = build_mode(CachingMode.STANDARD, site, base_config)
    std_outcomes = run_visit_sequence(standard, conditions, times)

    catalyst = build_mode(CachingMode.CATALYST, site, base_config)
    cat_outcomes = run_visit_sequence(catalyst, conditions, times)

    return Figure1Panels(
        cold=std_outcomes[0].result,
        standard_revisit=std_outcomes[1].result,
        catalyst_revisit=cat_outcomes[1].result)
