"""Server-side load: what CacheCatalyst does *to the origin* (§6).

The paper defers "the effect of this approach on the performance of web
servers".  Two opposing forces, both measured here:

- every eliminated revalidation is a request the origin never sees —
  CPU, sockets and log volume saved;
- every base-HTML response now costs a DOM traversal + ETag-map build
  (amortized by memoization to ~once per content version).

The experiment counts origin requests over a visit schedule per mode and
reports the request-volume reduction alongside the stapling work done.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..browser.engine import BrowserConfig
from ..core.catalyst import run_visit_sequence
from ..core.modes import CachingMode, build_mode
from ..netsim.clock import DAY, HOUR, MINUTE
from ..netsim.link import NetworkConditions
from ..workload.corpus import Corpus, make_corpus
from .report import format_pct, format_table

__all__ = ["ServerLoadResult", "run_server_load", "format_server_load"]

#: a browsing week: several same-day returns plus longer gaps
DEFAULT_VISIT_TIMES: tuple[float, ...] = (
    0.0, 10 * MINUTE, 1 * HOUR, 3 * HOUR, 1 * DAY, 2 * DAY, 7 * DAY)


@dataclass(frozen=True)
class ServerLoadResult:
    """Origin-side counters for one mode over the visit schedule."""

    mode: str
    #: requests that reached the origin (200s + 304s)
    origin_requests: int
    #: of those, 304 revalidation answers
    not_modified: int
    #: ETag maps built and stapled (catalyst-only work)
    maps_stapled: int
    #: bytes of X-Etag-Config emitted
    config_bytes: int


def run_server_load(corpus: Optional[Corpus] = None,
                    conditions: NetworkConditions = NetworkConditions.of(
                        60, 40),
                    visit_times_s: Sequence[float] = DEFAULT_VISIT_TIMES,
                    sites: int = 5,
                    base_config: BrowserConfig = BrowserConfig()
                    ) -> list[ServerLoadResult]:
    """Count origin-side work per mode over the schedule."""
    if corpus is None:
        corpus = make_corpus()
    subset = corpus.sample(sites, seed=21).frozen()
    results = []
    for mode in (CachingMode.NO_CACHE, CachingMode.STANDARD,
                 CachingMode.CATALYST, CachingMode.CATALYST_SESSIONS):
        origin_requests = 0
        not_modified = 0
        maps_stapled = 0
        config_bytes = 0
        for site_spec in subset:
            setup = build_mode(mode, site_spec, base_config)
            run_visit_sequence(setup, conditions, list(visit_times_s))
            server = setup.server
            inner = getattr(server, "static", server)
            origin_requests += (inner.full_response_count
                                + inner.not_modified_count)
            not_modified += inner.not_modified_count
            if hasattr(server, "config_entry_counts"):
                maps_stapled += len(server.config_entry_counts)
                config_bytes += server.config_bytes_emitted
        results.append(ServerLoadResult(
            mode=mode.value, origin_requests=origin_requests,
            not_modified=not_modified, maps_stapled=maps_stapled,
            config_bytes=config_bytes))
    return results


def format_server_load(results: list[ServerLoadResult]) -> str:
    baseline = next(r for r in results if r.mode == "standard")
    rows = []
    for result in results:
        saved = ((baseline.origin_requests - result.origin_requests)
                 / baseline.origin_requests
                 if baseline.origin_requests else 0.0)
        rows.append([
            result.mode, result.origin_requests, result.not_modified,
            format_pct(saved) if result.mode != "standard" else "—",
            result.maps_stapled, f"{result.config_bytes:,}"])
    return format_table(
        ["mode", "origin requests", "304s", "vs standard",
         "maps stapled", "config bytes"], rows)
