"""Server-side load: what CacheCatalyst does *to the origin* (§6).

The paper defers "the effect of this approach on the performance of web
servers".  Two opposing forces, both measured here:

- every eliminated revalidation is a request the origin never sees —
  CPU, sockets and log volume saved;
- every base-HTML response now costs a DOM traversal + ETag-map build
  (amortized by the content-addressed hot-path caches to ~once per
  content version).

Two experiments live here:

- :func:`run_server_load` counts origin requests over a visit schedule
  per mode (simulated time; deterministic).
- :func:`run_hot_path` measures the *wall-clock* cost of ``handle()``
  itself — requests/sec and p50/p99 latency for the cold (miss) and warm
  (cache-hit) paths, with the hot-path caches on vs off — and checks the
  two variants stay byte-identical.  This is the repo's perf-trajectory
  baseline (``BENCH_*.json``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

from ..browser.engine import BrowserConfig
from ..core.catalyst import run_visit_sequence
from ..core.modes import CachingMode, build_mode
from ..http.messages import Request
from ..netsim.clock import DAY, HOUR, MINUTE
from ..netsim.link import NetworkConditions
from ..obs.manifest import build_manifest, stamp
from ..perf import percentile
from ..server.catalyst import CatalystConfig, CatalystServer
from ..server.site import OriginSite
from ..workload.corpus import Corpus, make_corpus
from .report import format_pct, format_table

__all__ = ["ServerLoadResult", "run_server_load", "format_server_load",
           "HotPathSide", "HotPathResult", "run_hot_path",
           "format_hot_path", "hot_path_bench_payload"]

#: a browsing week: several same-day returns plus longer gaps
DEFAULT_VISIT_TIMES: tuple[float, ...] = (
    0.0, 10 * MINUTE, 1 * HOUR, 3 * HOUR, 1 * DAY, 2 * DAY, 7 * DAY)


@dataclass(frozen=True)
class ServerLoadResult:
    """Origin-side counters for one mode over the visit schedule."""

    mode: str
    #: requests that reached the origin (200s + 304s)
    origin_requests: int
    #: of those, 304 revalidation answers
    not_modified: int
    #: ETag maps built and stapled (catalyst-only work)
    maps_stapled: int
    #: bytes of X-Etag-Config emitted
    config_bytes: int


def run_server_load(corpus: Optional[Corpus] = None,
                    conditions: NetworkConditions = NetworkConditions.of(
                        60, 40),
                    visit_times_s: Sequence[float] = DEFAULT_VISIT_TIMES,
                    sites: int = 5,
                    base_config: Optional[BrowserConfig] = None
                    ) -> list[ServerLoadResult]:
    """Count origin-side work per mode over the schedule.

    ``base_config=None`` means a fresh default per call.
    """
    if base_config is None:
        base_config = BrowserConfig()
    if corpus is None:
        corpus = make_corpus()
    subset = corpus.sample(sites, seed=21).frozen()
    results = []
    for mode in (CachingMode.NO_CACHE, CachingMode.STANDARD,
                 CachingMode.CATALYST, CachingMode.CATALYST_SESSIONS):
        origin_requests = 0
        not_modified = 0
        maps_stapled = 0
        config_bytes = 0
        for site_spec in subset:
            setup = build_mode(mode, site_spec, base_config)
            run_visit_sequence(setup, conditions, list(visit_times_s))
            server = setup.server
            inner = getattr(server, "static", server)
            origin_requests += (inner.full_response_count
                                + inner.not_modified_count)
            not_modified += inner.not_modified_count
            if hasattr(server, "config_entry_counts"):
                maps_stapled += len(server.config_entry_counts)
                config_bytes += server.config_bytes_emitted
        results.append(ServerLoadResult(
            mode=mode.value, origin_requests=origin_requests,
            not_modified=not_modified, maps_stapled=maps_stapled,
            config_bytes=config_bytes))
    return results


def format_server_load(results: list[ServerLoadResult]) -> str:
    baseline = next(r for r in results if r.mode == "standard")
    rows = []
    for result in results:
        saved = ((baseline.origin_requests - result.origin_requests)
                 / baseline.origin_requests
                 if baseline.origin_requests else 0.0)
        rows.append([
            result.mode, result.origin_requests, result.not_modified,
            format_pct(saved) if result.mode != "standard" else "—",
            result.maps_stapled, f"{result.config_bytes:,}"])
    return format_table(
        ["mode", "origin requests", "304s", "vs standard",
         "maps stapled", "config bytes"], rows)


# ---------------------------------------------------------------------------
# Wall-clock hot-path benchmark (the BENCH_* trajectory)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class HotPathSide:
    """Wall-clock profile of one server variant (caches on or off)."""

    label: str
    #: document requests issued (cold + warm)
    requests: int
    #: warm-path (repeat request, unchanged versions) requests/sec
    warm_rps: float
    #: first-request (cold, cache-miss) latency percentiles, microseconds
    cold_p50_us: float
    cold_p99_us: float
    #: warm-path latency percentiles, microseconds
    warm_p50_us: float
    warm_p90_us: float
    warm_p99_us: float
    #: full DOM parses actually performed
    html_parses: int
    #: ETag maps actually built (vs served from the map cache)
    map_builds: int
    render_hits: int
    map_hits: int


@dataclass(frozen=True)
class HotPathResult:
    """Cached-vs-uncached wall-clock comparison over one site subset."""

    sites: int
    repeats: int
    cached: HotPathSide
    uncached: HotPathSide
    #: cached and uncached variants produced byte-identical responses
    #: (status + header fields in order + body) on every compared request
    byte_identical: bool
    #: corpus-subsample seed (part of the run's manifest identity)
    seed: int = 21
    #: wall seconds the whole profile took (manifest provenance)
    elapsed_s: float = 0.0

    @property
    def warm_speedup(self) -> float:
        if self.uncached.warm_rps <= 0:
            return 0.0
        return self.cached.warm_rps / self.uncached.warm_rps


def _profile_servers(pairs: list[tuple[CatalystServer, str]], label: str,
                     repeats: int) -> HotPathSide:
    """Drive repeated document requests and fold the perf counters."""
    cold_ns: list[int] = []
    warm_ns: list[int] = []
    requests = 0
    for server, doc_url in pairs:
        request = Request(url=doc_url)
        before = server.perf.handle_count
        server.handle(request, 0.0)
        requests += 1
        samples = server.perf.handle_samples_ns
        cold_ns.append(samples[before])
        for _ in range(repeats):
            server.handle(request, 0.0)
        requests += repeats
        warm_ns.extend(server.perf.handle_samples_ns[before + 1:])
    warm_total_s = sum(warm_ns) / 1e9
    return HotPathSide(
        label=label,
        requests=requests,
        warm_rps=(len(warm_ns) / warm_total_s if warm_total_s > 0
                  else 0.0),
        cold_p50_us=percentile(cold_ns, 50) / 1e3,
        cold_p99_us=percentile(cold_ns, 99) / 1e3,
        warm_p50_us=percentile(warm_ns, 50) / 1e3,
        warm_p90_us=percentile(warm_ns, 90) / 1e3,
        warm_p99_us=percentile(warm_ns, 99) / 1e3,
        html_parses=sum(s.perf.html_parses for s, _ in pairs),
        map_builds=sum(s.perf.map_builds for s, _ in pairs),
        render_hits=sum(s.perf.render_hits for s, _ in pairs),
        map_hits=sum(s.perf.map_hits for s, _ in pairs),
    )


def _responses_identical(a, b) -> bool:
    return (a.status == b.status and a.body == b.body
            and list(a.headers.items()) == list(b.headers.items()))


def run_hot_path(corpus: Optional[Corpus] = None, sites: int = 3,
                 repeats: int = 300, seed: int = 21) -> HotPathResult:
    """Wall-clock profile of the Catalyst document hot path.

    For each site, one cold document request then ``repeats`` warm
    repeats at a fixed simulated time (so content versions never move) —
    once with the content-addressed caches on, once with the seed's
    uncached path — plus a byte-identity cross-check between the two.
    """
    started = time.perf_counter()
    if corpus is None:
        corpus = make_corpus()
    subset = corpus.sample(sites, seed=seed).frozen()
    cached_pairs: list[tuple[CatalystServer, str]] = []
    uncached_pairs: list[tuple[CatalystServer, str]] = []
    identical = True
    for site_spec in subset:
        doc_url = next(iter(site_spec.pages))
        cached = CatalystServer(OriginSite(site_spec))
        uncached = CatalystServer(
            OriginSite(site_spec),
            config=CatalystConfig(hot_path_cache=False))
        # Byte-identity check on throwaway twins (so the profiled servers
        # start cold), covering miss, hit, and conditional requests.
        check_a = CatalystServer(OriginSite(site_spec))
        check_b = CatalystServer(
            OriginSite(site_spec),
            config=CatalystConfig(hot_path_cache=False))
        for at_time in (0.0, 0.0, 1.0):
            ra = check_a.handle(Request(url=doc_url), at_time)
            rb = check_b.handle(Request(url=doc_url), at_time)
            identical = identical and _responses_identical(ra, rb)
        conditional = Request(url=doc_url,
                              headers={"If-None-Match": ra.headers["ETag"]})
        identical = identical and _responses_identical(
            check_a.handle(conditional, 2.0), check_b.handle(conditional, 2.0))
        cached_pairs.append((cached, doc_url))
        uncached_pairs.append((uncached, doc_url))
    return HotPathResult(
        sites=len(subset.sites),
        repeats=repeats,
        cached=_profile_servers(cached_pairs, "cached", repeats),
        uncached=_profile_servers(uncached_pairs, "uncached", repeats),
        byte_identical=identical,
        seed=seed,
        elapsed_s=time.perf_counter() - started,
    )


def format_hot_path(result: HotPathResult) -> str:
    rows = []
    for side in (result.cached, result.uncached):
        rows.append([
            side.label, f"{side.warm_rps:,.0f}",
            f"{side.cold_p50_us:,.0f}", f"{side.warm_p50_us:,.1f}",
            f"{side.warm_p99_us:,.1f}", side.html_parses, side.map_builds])
    table = format_table(
        ["variant", "warm req/s", "cold p50 µs", "warm p50 µs",
         "warm p99 µs", "html parses", "map builds"], rows)
    return (table
            + f"\n\nwarm-path speedup: {result.warm_speedup:.1f}x"
            + f"   byte-identical: {'yes' if result.byte_identical else 'NO'}"
            + f"   ({result.sites} sites x {result.repeats} warm repeats)")


def hot_path_bench_payload(result: HotPathResult) -> dict:
    """Machine-readable record for the ``BENCH_*.json`` trajectory."""

    def side_payload(side: HotPathSide) -> dict:
        return {
            "requests": side.requests,
            "warm_rps": round(side.warm_rps, 1),
            "latency_us": {
                "cold_p50": round(side.cold_p50_us, 2),
                "cold_p99": round(side.cold_p99_us, 2),
                "warm_p50": round(side.warm_p50_us, 2),
                "warm_p90": round(side.warm_p90_us, 2),
                "warm_p99": round(side.warm_p99_us, 2),
            },
            "counters": {
                "html_parses": side.html_parses,
                "map_builds": side.map_builds,
                "render_cache_hits": side.render_hits,
                "map_cache_hits": side.map_hits,
            },
        }

    payload = {
        "bench": "server_hot_path",
        "schema_version": 1,
        "params": {"sites": result.sites, "repeats": result.repeats},
        "throughput_rps": {
            "cached_warm": round(result.cached.warm_rps, 1),
            "uncached_warm": round(result.uncached.warm_rps, 1),
            "warm_speedup": round(result.warm_speedup, 2),
        },
        "cached": side_payload(result.cached),
        "uncached": side_payload(result.uncached),
        "byte_identical": result.byte_identical,
    }
    # Identity = the workload (which sites); sampling = how long we
    # hammered it (repeats) — runs differing only in repeats compare.
    return stamp(payload, build_manifest(
        config={"bench": "server_hot_path", "sites": result.sites,
                "seed": result.seed},
        sampling={"repeats": result.repeats},
        seeds=[result.seed],
        wall_time_s=result.elapsed_s or None,
    ))
