"""Figure 3: PLT reduction by CacheCatalyst across network conditions.

The paper's headline evaluation: for each (throughput, latency) cell,
the average percentage reduction in warm-visit PLT of the proposed
approach relative to the current caching approach, averaged over the
100-site corpus and the revisit delays {1 min, 1 h, 6 h, 1 d, 1 w}.

Expected shape (from the paper's Figure 3 and text):

- little improvement at 8 Mbps (bandwidth-bound),
- large improvement at 60 Mbps (latency-bound) — ~30 % on average,
- at fixed throughput, improvement grows with latency,
- 60 Mbps / 40 ms is the median global 5G condition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..browser.engine import BrowserConfig
from ..core.modes import CachingMode
from ..netsim.clock import DAY, HOUR, MINUTE, WEEK
from ..netsim.conditions import (FIGURE3_LATENCIES_MS,
                                 FIGURE3_THROUGHPUTS_MBPS)
from ..netsim.link import NetworkConditions
from ..workload.corpus import Corpus, make_corpus
from .harness import GridResult, run_grid
from .report import format_grid, format_pct

__all__ = ["Figure3Cell", "Figure3Result", "run_figure3",
           "PAPER_REVISIT_DELAYS_S", "HEADLINE_CONDITION"]

#: the paper's revisit schedule: 1 min, 1 h, 6 h, 1 d, 1 w
PAPER_REVISIT_DELAYS_S: tuple[float, ...] = (
    1 * MINUTE, 1 * HOUR, 6 * HOUR, 1 * DAY, 1 * WEEK)

#: median global 5G — the condition the paper anchors its 30 % claim on
HEADLINE_CONDITION = NetworkConditions.of(60, 40, label="60Mbps/40ms")


@dataclass(frozen=True)
class Figure3Cell:
    """One bar of Figure 3."""

    mbps: float
    rtt_ms: float
    mean_reduction: float
    mean_standard_plt_ms: float
    mean_catalyst_plt_ms: float
    pairs: int

    @property
    def label(self) -> str:
        return f"{self.mbps:g}Mbps/{self.rtt_ms:g}ms"


@dataclass
class Figure3Result:
    cells: list[Figure3Cell]
    grid: GridResult

    def cell(self, mbps: float, rtt_ms: float) -> Figure3Cell:
        for cell in self.cells:
            if cell.mbps == mbps and cell.rtt_ms == rtt_ms:
                return cell
        raise KeyError(f"no cell {mbps}Mbps/{rtt_ms}ms")

    @property
    def overall_mean_reduction(self) -> float:
        if not self.cells:
            return 0.0
        return sum(c.mean_reduction for c in self.cells) / len(self.cells)

    def format(self) -> str:
        """The figure as a text grid: rows = throughput, cols = latency."""
        throughputs = sorted({c.mbps for c in self.cells})
        latencies = sorted({c.rtt_ms for c in self.cells})
        values = [[format_pct(self.cell(mbps, rtt).mean_reduction)
                   for rtt in latencies] for mbps in throughputs]
        grid = format_grid(
            row_labels=[f"{t:g} Mbps" for t in throughputs],
            col_labels=[f"{l:g} ms" for l in latencies],
            values=values, corner="PLT reduction")
        return (grid + "\n"
                + f"overall mean: {format_pct(self.overall_mean_reduction)}")

    def cell_summary(self, mbps: float, rtt_ms: float):
        """Bootstrap :class:`~repro.experiments.stats.Summary` of the
        per-(site, delay) reductions behind one cell."""
        cell = self.cell(mbps, rtt_ms)
        return self.grid.reduction_summary(
            CachingMode.STANDARD.value, CachingMode.CATALYST.value,
            conditions=cell.label)

    def format_cell_with_ci(self, mbps: float, rtt_ms: float) -> str:
        """One cell with its confidence interval, e.g. for the headline."""
        summary = self.cell_summary(mbps, rtt_ms)
        return (f"{mbps:g}Mbps/{rtt_ms:g}ms: "
                f"{format_pct(summary.mean)} "
                f"(95% CI [{format_pct(summary.ci_low)}, "
                f"{format_pct(summary.ci_high)}], n={summary.n})")


def run_figure3(corpus: Optional[Corpus] = None,
                throughputs_mbps: Sequence[float] = FIGURE3_THROUGHPUTS_MBPS,
                latencies_ms: Sequence[float] = FIGURE3_LATENCIES_MS,
                delays_s: Sequence[float] = PAPER_REVISIT_DELAYS_S,
                sites: Optional[int] = None,
                base_config: Optional[BrowserConfig] = None,
                content_churn: bool = False,
                parallel: bool = False,
                progress=None, metrics=None) -> Figure3Result:
    """Regenerate Figure 3.

    ``sites`` subsamples the corpus for quicker runs; the full corpus is
    the default (and what EXPERIMENTS.md records).

    ``content_churn=False`` is the paper's methodology: homepages were
    *cloned*, so content never changed between visits — only headers and
    the advanced clock mattered.  ``content_churn=True`` is this repo's
    realism extension, where resources change per their churn processes
    (changed resources must be fetched in every mode, shrinking — but not
    erasing — the advantage).
    """
    if base_config is None:
        base_config = BrowserConfig()
    if corpus is None:
        corpus = make_corpus()
    if sites is not None and sites < len(corpus):
        corpus = corpus.sample(sites, seed=7)
    if not content_churn:
        corpus = corpus.frozen()
    conditions_list = [
        NetworkConditions.of(mbps, rtt_ms,
                             label=f"{mbps:g}Mbps/{rtt_ms:g}ms")
        for mbps in throughputs_mbps for rtt_ms in latencies_ms]
    if parallel:
        from .parallel import run_grid_parallel
        grid = run_grid_parallel(
            sites=corpus,
            modes=(CachingMode.STANDARD, CachingMode.CATALYST),
            conditions_list=conditions_list,
            delays_s=delays_s,
            base_config=base_config,
            metrics=metrics)
    else:
        grid = run_grid(
            sites=corpus,
            modes=(CachingMode.STANDARD, CachingMode.CATALYST),
            conditions_list=conditions_list,
            delays_s=delays_s,
            base_config=base_config,
            progress=progress,
            metrics=metrics)
    cells = []
    for conditions in conditions_list:
        label = conditions.describe()
        reduction = grid.mean_reduction_vs(
            CachingMode.STANDARD.value, CachingMode.CATALYST.value,
            conditions=label)
        cells.append(Figure3Cell(
            mbps=conditions.downlink_mbps,
            rtt_ms=conditions.rtt_ms,
            mean_reduction=reduction,
            mean_standard_plt_ms=grid.mean_warm_plt(
                mode=CachingMode.STANDARD.value, conditions=label),
            mean_catalyst_plt_ms=grid.mean_warm_plt(
                mode=CachingMode.CATALYST.value, conditions=label),
            pairs=len(grid.where(mode=CachingMode.CATALYST.value,
                                 conditions=label))))
    return Figure3Result(cells=cells, grid=grid)
