"""Plain-text table/grid formatting for benchmark output.

The benches print the same rows/series the paper's figures report; these
helpers keep that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_grid", "format_pct"]


def format_pct(fraction: float, digits: int = 1) -> str:
    """0.314 -> '31.4%'."""
    return f"{fraction * 100:.{digits}f}%"


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Monospace table with right-aligned columns.

    >>> print(format_table(['a', 'b'], [[1, 'x'], [22, 'yy']]))
     a |  b
    ---+---
     1 |  x
    22 | yy
    """
    str_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(widths[index])
                          for index, cell in enumerate(cells))

    lines = [fmt_row(list(headers))]
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def format_grid(row_labels: Sequence[str], col_labels: Sequence[str],
                values: Sequence[Sequence[object]],
                corner: str = "") -> str:
    """A labelled 2-D grid (throughput × latency, like Figure 3)."""
    headers = [corner] + list(col_labels)
    rows = [[row_labels[index]] + list(row)
            for index, row in enumerate(values)]
    return format_table(headers, rows)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)
