"""Population-scale fleet pricing: what a whole user base experiences.

The paper's Figure 3 is one user on a delay grid.  A deployment verdict
needs the fleet view: over a seeded population — Zipf site popularity,
per-cohort network conditions and revisit-delay mixtures, Poisson
arrivals (:mod:`repro.workload.population`) — what PLT distribution and
origin load does each caching mode actually produce?

Two interchangeable backends answer it:

* **Analytic** (:func:`run_fleet_analytic`): the population never
  materializes.  Each cohort's revisit-delay mixture quantizes into
  weighted grid points (:func:`~repro.workload.population.
  delay_mixture`), the closed-form model prices every ``(site, mode,
  delay-bin)`` cell *plus* its origin demand in one coefficient pass
  (:meth:`~repro.core.analysis_vec.VectorAnalyticModel.batch_visit`),
  and the Poisson-thinning cold share adds the first-visit cells.
  Fleet aggregates are weighted reductions over a few thousand cells
  standing in for millions of visits — a 10⁶-visit population prices
  in well under a second on numpy, seconds on the pure-Python leg.
* **Sampled DES** (:func:`run_fleet_des`): a deterministic sample of
  real schedule entries replays through the simulator, sharded by
  user cohort across the warm-worker pool.  Workers stream per-cohort
  histogram *sketches* back through ``MetricsRegistry.merge()`` —
  never per-visit rows — so parent memory is O(cohorts · modes), not
  O(visits), and a parallel run merges exactly (below the sketch cap)
  with the serial one.

:func:`validate_fleet` ties the two together with the same Spearman-ρ
gate the sweep validation uses; :func:`run_fleet_bench` stamps the
throughput floors into ``BENCH_PR10.json``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..browser.engine import BrowserConfig
from ..core.analysis_vec import (VectorAnalyticModel, compile_site,
                                 numpy_available)
from ..core.catalyst import run_visit_sequence
from ..core.modes import CachingMode, build_mode
from ..netsim.link import NetworkConditions
from ..obs.log import get_logger
from ..obs.manifest import build_manifest, stamp
from ..obs.metrics import DEFAULT_HISTOGRAM_SAMPLES, MetricsRegistry
from ..workload.corpus import CORPUS_SIZE, Corpus, make_corpus
from ..workload.population import (CohortSpec, PopulationSpec, Visit,
                                   cold_fraction, delay_mixture,
                                   sample_visits, zipf_weights)
from .parallel import _chunksize, _warm_worker
from .report import format_pct, format_table
from .stats import spearman, weighted_percentiles

__all__ = ["FLEET_MODES", "DEFAULT_FLEET_COHORTS", "default_population",
           "ModeStats", "CohortFleet", "FleetResult", "run_fleet_analytic",
           "FleetDesResult", "run_fleet_des",
           "FleetValidation", "validate_fleet",
           "FleetBenchResult", "run_fleet_bench",
           "fleet_payload", "fleet_bench_payload",
           "FLEET_POPULATION_FLOOR", "FLEET_VECTORIZED_FLOOR_PER_S",
           "FLEET_FALLBACK_FLOOR_PER_S", "FLEET_DES_FLOOR_PER_S"]

log = get_logger("experiments.fleet")

FLEET_MODES = (CachingMode.STANDARD, CachingMode.CATALYST)

#: Cohorts grounded on the Figure-3 condition grid: a fast-urban
#: majority at the paper's headline condition, a mid tier, and the
#: constrained tail where Catalyst matters most.
DEFAULT_FLEET_COHORTS = (
    CohortSpec("urban-fast", 0.45,
               NetworkConditions.of(60, 40, label="60Mbps/40ms")),
    CohortSpec("suburban-mid", 0.35,
               NetworkConditions.of(30, 20, label="30Mbps/20ms")),
    CohortSpec("constrained", 0.20,
               NetworkConditions.of(8, 100, label="8Mbps/100ms")),
)

#: Bench floors, recorded in the artifact and gated in CI.
FLEET_POPULATION_FLOOR = 1_000_000          # analytic visits priced per run
FLEET_VECTORIZED_FLOOR_PER_S = 1_000_000.0  # numpy backend
FLEET_FALLBACK_FLOOR_PER_S = 100_000.0      # pure-Python backend
FLEET_DES_FLOOR_PER_S = 2.0                 # sampled simulator visits


def default_population(users: int = 20_000,
                       measured: int = 1_000_000,
                       warmup: Optional[int] = None,
                       sites: int = CORPUS_SIZE,
                       alpha: float = 0.8,
                       rate_per_user_day: float = 12.0,
                       seed: int = 2024,
                       cohorts: Sequence[CohortSpec] = DEFAULT_FLEET_COHORTS
                       ) -> PopulationSpec:
    """The standard fleet workload: icarus-style warmup + measured split.

    Defaults give ~60 visits per user over a ~5-day horizon — deep
    enough that popular sites are warm for most users while the
    popularity tail stays cold, which is the regime where fleet hit
    ratios are decided.
    """
    if warmup is None:
        warmup = measured // 4
    return PopulationSpec(n_users=users, n_sites=sites,
                          cohorts=tuple(cohorts), n_warmup=warmup,
                          n_measured=measured, alpha=alpha,
                          rate_per_user_day=rate_per_user_day, seed=seed)


# -- analytic backend -------------------------------------------------------
@dataclass(frozen=True)
class ModeStats:
    """Fleet aggregates for one caching mode over one visit population."""

    mode: str
    mean_ms: float
    p50_ms: float
    p90_ms: float
    p99_ms: float
    #: expected origin requests per second over the measured window
    origin_rps: float
    #: expected origin egress over the measured window
    origin_mbps: float
    #: resource acquisitions served without an origin request
    hit_ratio: float


@dataclass(frozen=True)
class CohortFleet:
    name: str
    label: str
    share: float
    #: expected measured visits
    visits: float
    #: share of measured visits that are first-ever (cold) loads
    cold_share: float
    modes: tuple[ModeStats, ...]


@dataclass(frozen=True)
class FleetResult:
    """Analytic fleet pricing: per-cohort and fleet-wide aggregates."""

    users: int
    population_visits: int
    alpha: float
    sites: int
    bins: int
    backend: str
    cohorts: tuple[CohortFleet, ...]
    fleet: tuple[ModeStats, ...]
    elapsed_s: float

    @property
    def visits_per_s(self) -> float:
        return self.population_visits / self.elapsed_s \
            if self.elapsed_s > 0 else float("inf")

    def reduction(self, baseline: str = "standard",
                  target: str = "catalyst") -> float:
        """Fleet-wide mean-PLT reduction of ``target`` vs ``baseline``."""
        by_mode = {stats.mode: stats for stats in self.fleet}
        base = by_mode[baseline].mean_ms
        return (base - by_mode[target].mean_ms) / base if base > 0 else 0.0

    def format(self) -> str:
        header = ["cohort", "share", "visits", "cold", "mode",
                  "mean ms", "p50", "p90", "p99", "origin req/s", "hit"]
        rows = []

        def mode_rows(name, share, visits, cold, stats_list):
            for index, stats in enumerate(stats_list):
                rows.append([
                    name if index == 0 else "",
                    format_pct(share) if index == 0 else "",
                    f"{visits:,.0f}" if index == 0 else "",
                    format_pct(cold) if index == 0 else "",
                    stats.mode,
                    f"{stats.mean_ms:,.0f}", f"{stats.p50_ms:,.0f}",
                    f"{stats.p90_ms:,.0f}", f"{stats.p99_ms:,.0f}",
                    f"{stats.origin_rps:,.1f}",
                    format_pct(stats.hit_ratio),
                ])

        for cohort in self.cohorts:
            mode_rows(f"{cohort.name} ({cohort.label})", cohort.share,
                      cohort.visits, cohort.cold_share, cohort.modes)
        total_cold = sum(c.visits * c.cold_share for c in self.cohorts) \
            / max(sum(c.visits for c in self.cohorts), 1e-12)
        mode_rows("fleet", 1.0, float(self.population_visits),
                  total_cold, self.fleet)
        lines = [
            f"population: {self.users:,} users · "
            f"{self.population_visits:,} measured visits · "
            f"zipf alpha={self.alpha:g} over {self.sites} sites · "
            f"{len(self.cohorts)} cohorts · {self.bins} delay bins",
            format_table(header, rows),
            f"fleet mean-PLT reduction (catalyst vs standard): "
            f"{format_pct(self.reduction())}",
            f"priced {self.population_visits:,} visits in "
            f"{self.elapsed_s:.2f}s "
            f"({self.visits_per_s:,.0f} visits/s, {self.backend} backend)",
        ]
        return "\n".join(lines)


def _weighted_mode_stats(mode: str, values, weights, requests, bytes_down,
                         acquisitions, window_s) -> ModeStats:
    total_w = sum(weights)
    p50, p90, p99 = weighted_percentiles(values, weights, (50, 90, 99))
    mean_ms = sum(v * w for v, w in zip(values, weights)) / total_w
    return ModeStats(
        mode=mode,
        mean_ms=mean_ms, p50_ms=p50, p90_ms=p90, p99_ms=p99,
        origin_rps=requests / window_s,
        origin_mbps=bytes_down * 8.0 / window_s / 1e6,
        hit_ratio=1.0 - requests / acquisitions if acquisitions > 0 else 0.0,
    )


def run_fleet_analytic(spec: PopulationSpec,
                       corpus: Optional[Corpus] = None,
                       bins: int = 24,
                       backend: str = "auto",
                       modes: Sequence[CachingMode] = FLEET_MODES,
                       config: Optional[BrowserConfig] = None
                       ) -> FleetResult:
    """Price the whole population closed-form; never builds the schedule.

    Per cohort, the expected measured visits factor as
    ``visits · zipf(site) · [cold | (1 - cold) · mixture(delay-bin)]``;
    each factor's cells come out of one vectorized
    :meth:`~repro.core.analysis_vec.VectorAnalyticModel.batch_visit`
    call per site, and every fleet aggregate is a weighted reduction
    over those cells.
    """
    if corpus is None:
        corpus = make_corpus()
    sites = list(corpus)
    if len(sites) != spec.n_sites:
        raise ValueError(f"spec prices {spec.n_sites} popularity ranks "
                         f"but the corpus has {len(sites)} sites")
    start = time.perf_counter()
    model = VectorAnalyticModel(config=config, backend=backend)
    compiled = [compile_site(site) for site in sites]
    popularity = zipf_weights(spec.n_sites, spec.alpha)
    warmup_share = spec.warmup_share
    per_user = spec.visits_per_user
    cold = [cold_fraction(per_user * p, warmup_share) for p in popularity]
    window_s = spec.measured_window_s
    mode_names = [mode.value for mode in modes]

    fleet_values = {m: [] for m in mode_names}
    fleet_weights = {m: [] for m in mode_names}
    fleet_requests = {m: 0.0 for m in mode_names}
    fleet_bytes = {m: 0.0 for m in mode_names}
    fleet_acquisitions = 0.0
    cohort_results = []
    for ci, cohort in enumerate(spec.cohorts):
        mixture = delay_mixture(cohort.revisit_model, bins)
        cohort_visits = spec.n_measured * spec.cohort_shares[ci]
        values = {m: [] for m in mode_names}
        weights = {m: [] for m in mode_names}
        requests = {m: 0.0 for m in mode_names}
        bytes_down = {m: 0.0 for m in mode_names}
        acquisitions = 0.0
        conditions = [cohort.conditions]
        for si, comp in enumerate(compiled):
            warm = model.batch_visit(comp, modes, mixture.delays_s,
                                     conditions)
            first = model.batch_visit(comp, modes, (0.0,), conditions,
                                      cold=True)
            warm_plt = warm.plt[0] if model.backend == "python" \
                else warm.plt[0].tolist()
            cold_plt = first.plt[0] if model.backend == "python" \
                else first.plt[0].tolist()
            site_visits = cohort_visits * popularity[si]
            cold_visits = site_visits * cold[si]
            warm_visits = site_visits - cold_visits
            acquisitions += site_visits * warm.acquisitions
            for mi, mode_name in enumerate(mode_names):
                vals, wts = values[mode_name], weights[mode_name]
                for di, bin_weight in enumerate(mixture.weights):
                    cell = warm_visits * bin_weight
                    vals.append(warm_plt[mi][di] * 1000.0)
                    wts.append(cell)
                    requests[mode_name] += cell * warm.requests[mi][di]
                    bytes_down[mode_name] += cell * warm.bytes_down[mi][di]
                vals.append(cold_plt[mi][0] * 1000.0)
                wts.append(cold_visits)
                requests[mode_name] += cold_visits * first.requests[mi][0]
                bytes_down[mode_name] += cold_visits * first.bytes_down[mi][0]
        cohort_cold = sum(p * c for p, c in zip(popularity, cold))
        cohort_modes = tuple(
            _weighted_mode_stats(m, values[m], weights[m], requests[m],
                                 bytes_down[m], acquisitions, window_s)
            for m in mode_names)
        cohort_results.append(CohortFleet(
            name=cohort.name, label=cohort.conditions.describe(),
            share=spec.cohort_shares[ci], visits=cohort_visits,
            cold_share=cohort_cold, modes=cohort_modes))
        for m in mode_names:
            fleet_values[m].extend(values[m])
            fleet_weights[m].extend(weights[m])
            fleet_requests[m] += requests[m]
            fleet_bytes[m] += bytes_down[m]
        fleet_acquisitions += acquisitions
    fleet_modes = tuple(
        _weighted_mode_stats(m, fleet_values[m], fleet_weights[m],
                             fleet_requests[m], fleet_bytes[m],
                             fleet_acquisitions, window_s)
        for m in mode_names)
    return FleetResult(
        users=spec.n_users, population_visits=spec.n_measured,
        alpha=spec.alpha, sites=spec.n_sites, bins=bins,
        backend=model.backend, cohorts=tuple(cohort_results),
        fleet=fleet_modes, elapsed_s=time.perf_counter() - start)


# -- sampled DES backend ----------------------------------------------------
def _fleet_chunk(task: tuple) -> tuple:
    """One cohort-sharded batch of sampled visits, run in a worker.

    Returns ``(metrics_dump, visits, pid, wall_s)`` — the dump carries
    per-cohort PLT sketches and demand counters, never per-visit rows,
    which is what keeps fleet memory O(cohorts) end to end.
    """
    cohort_name, mbps, rtt_ms, label, pairs, mode_values, config, \
        max_samples = task
    start = time.perf_counter()
    conditions = NetworkConditions.of(mbps, rtt_ms, label=label)
    if config is None:
        config = BrowserConfig()
    shard = MetricsRegistry()
    prefix = f"fleet.cohort.{cohort_name}"
    for site_spec, delay_s in pairs:
        shard.counter(f"{prefix}.visits").inc()
        if delay_s is None:
            shard.counter(f"{prefix}.cold_visits").inc()
        for mode_value in mode_values:
            mode = CachingMode(mode_value)
            setup = build_mode(mode, site_spec, config)
            times = [0.0] if delay_s is None else [0.0, delay_s]
            outcome = run_visit_sequence(setup, conditions, times)[-1]
            result = outcome.result
            shard.histogram(f"{prefix}.plt_ms.{mode_value}",
                            max_samples=max_samples).observe(result.plt_ms)
            shard.counter(f"{prefix}.requests.{mode_value}").inc(
                result.request_count)
            shard.counter(f"{prefix}.bytes_down.{mode_value}").inc(
                result.bytes_down)
    return shard.dump(), len(pairs), os.getpid(), \
        time.perf_counter() - start


@dataclass
class FleetDesResult:
    """Sampled-DES fleet aggregates, merged from worker sketches."""

    visits: int
    workers: int
    #: cohort name -> mode -> {count, mean_ms, p50_ms, p90_ms, p99_ms}
    cohorts: dict
    elapsed_s: float
    metrics: MetricsRegistry = field(repr=False)

    @property
    def visits_per_s(self) -> float:
        return self.visits / self.elapsed_s if self.elapsed_s > 0 \
            else float("inf")

    def format(self) -> str:
        header = ["cohort", "mode", "visits", "cold", "mean ms", "p50",
                  "p90", "p99"]
        rows = []
        for name, modes in self.cohorts.items():
            for index, (mode, snap) in enumerate(modes.items()):
                rows.append([
                    name if index == 0 else "",
                    mode,
                    f"{snap['visits']}" if index == 0 else "",
                    f"{snap['cold_visits']}" if index == 0 else "",
                    f"{snap['mean_ms']:,.0f}", f"{snap['p50_ms']:,.0f}",
                    f"{snap['p90_ms']:,.0f}", f"{snap['p99_ms']:,.0f}"])
        return "\n".join([
            f"sampled DES fleet: {self.visits} visits, "
            f"{self.workers} worker(s), {self.elapsed_s:.1f}s "
            f"({self.visits_per_s:.1f} visits/s)",
            format_table(header, rows)])


def run_fleet_des(spec: PopulationSpec,
                  corpus: Optional[Corpus] = None,
                  sample: int = 96,
                  modes: Sequence[CachingMode] = FLEET_MODES,
                  max_workers: Optional[int] = None,
                  config: Optional[BrowserConfig] = None,
                  metrics: Optional[MetricsRegistry] = None,
                  histogram_samples: int = DEFAULT_HISTOGRAM_SAMPLES
                  ) -> FleetDesResult:
    """Replay a deterministic schedule sample through the simulator.

    Visits shard by ``(cohort, user)`` through the warm-worker pool;
    each worker returns a metrics dump (PLT histograms + demand
    counters per cohort and mode) that merges into ``metrics``.
    ``max_workers=0`` runs serially in-process — same chunking, same
    merge order, so the serial and parallel registries agree exactly
    while the pooled sample count stays under ``histogram_samples``.
    """
    if corpus is None:
        corpus = make_corpus()
    sites = list(corpus)
    if len(sites) != spec.n_sites:
        raise ValueError(f"spec prices {spec.n_sites} popularity ranks "
                         f"but the corpus has {len(sites)} sites")
    start = time.perf_counter()
    visits = sample_visits(spec, sample, per_cohort=True)
    groups: dict[tuple[int, int], list[Visit]] = {}
    for visit in visits:
        groups.setdefault((visit.cohort, visit.user), []).append(visit)
    mode_values = [mode.value for mode in modes]
    tasks = []
    for (cohort_index, _user), group in groups.items():
        cohort = spec.cohorts[cohort_index]
        pairs = [(sites[v.site], v.delay_s) for v in group]
        tasks.append((cohort.name, cohort.conditions.downlink_mbps,
                      cohort.conditions.rtt_ms,
                      cohort.conditions.describe(), pairs, mode_values,
                      config, histogram_samples))
    registry = metrics if metrics is not None else MetricsRegistry()
    if max_workers == 0 or len(tasks) <= 1:
        workers = 1
        outputs = [_fleet_chunk(task) for task in tasks]
    else:
        workers = max_workers or min(len(tasks), os.cpu_count() or 1)
        with ProcessPoolExecutor(max_workers=workers,
                                 initializer=_warm_worker) as pool:
            outputs = list(pool.map(
                _fleet_chunk, tasks,
                chunksize=_chunksize(len(tasks), workers)))
    total = 0
    for dump, n_visits, pid, wall_s in outputs:
        registry.merge(dump)
        total += n_visits
        log.debug("fleet-chunk-done", pid=pid, visits=n_visits,
                  chunk_s=round(wall_s, 3))
    registry.gauge("fleet.des.workers").set(workers)
    snapshot: dict = {}
    for cohort in spec.cohorts:
        prefix = f"fleet.cohort.{cohort.name}"
        visits_counter = registry.get(f"{prefix}.visits")
        cold_counter = registry.get(f"{prefix}.cold_visits")
        per_mode = {}
        for mode_value in mode_values:
            hist = registry.get(f"{prefix}.plt_ms.{mode_value}")
            if hist is None:
                continue
            per_mode[mode_value] = {
                "visits": visits_counter.value if visits_counter else 0,
                "cold_visits": cold_counter.value if cold_counter else 0,
                "count": hist.count,
                "mean_ms": hist.mean(),
                "p50_ms": hist.percentile(50),
                "p90_ms": hist.percentile(90),
                "p99_ms": hist.percentile(99),
            }
        if per_mode:
            snapshot[cohort.name] = per_mode
    return FleetDesResult(visits=total, workers=workers,
                          cohorts=snapshot,
                          elapsed_s=time.perf_counter() - start,
                          metrics=registry)


# -- DES-vs-analytic validation --------------------------------------------
@dataclass(frozen=True)
class FleetValidation:
    """Rank agreement between the two backends on a schedule sample."""

    rho: float
    min_rho: float
    rows: int
    elapsed_s: float

    @property
    def passed(self) -> bool:
        return self.rho >= self.min_rho

    def format(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        return (f"fleet validation: Spearman rho={self.rho:.3f} over "
                f"{self.rows} sampled (visit, mode) cells "
                f"(gate >= {self.min_rho:.2f}) -> {verdict} "
                f"[{self.elapsed_s:.1f}s]")


def validate_fleet(spec: PopulationSpec,
                   corpus: Optional[Corpus] = None,
                   sample: int = 24,
                   min_rho: float = 0.85,
                   backend: str = "auto",
                   modes: Sequence[CachingMode] = FLEET_MODES,
                   config: Optional[BrowserConfig] = None
                   ) -> FleetValidation:
    """Price a seeded cohort sample both ways; gate on Spearman ρ.

    Same contract as ``sweep --validate``: the analytic backend must
    *rank* sampled fleet visits like the simulator does, cold loads
    included.
    """
    if corpus is None:
        corpus = make_corpus()
    sites = list(corpus)
    if len(sites) != spec.n_sites:
        raise ValueError(f"spec prices {spec.n_sites} popularity ranks "
                         f"but the corpus has {len(sites)} sites")
    start = time.perf_counter()
    model = VectorAnalyticModel(config=config, backend=backend)
    visits = sample_visits(spec, sample, per_cohort=True)
    analytic_ms: list[float] = []
    des_ms: list[float] = []
    for visit in visits:
        cohort = spec.cohorts[visit.cohort]
        site = sites[visit.site]
        comp = compile_site(site)
        cold = visit.delay_s is None
        delay_s = 0.0 if cold else visit.delay_s
        plt = model.batch_plt(comp, modes, (delay_s,),
                              [cohort.conditions], cold=cold)
        for mi, mode in enumerate(modes):
            analytic_ms.append(float(plt[0][mi][0]) * 1000.0)
            setup = build_mode(mode, site,
                               config if config is not None
                               else BrowserConfig())
            times = [0.0] if cold else [0.0, delay_s]
            outcome = run_visit_sequence(setup, cohort.conditions,
                                         times)[-1]
            des_ms.append(outcome.result.plt_ms)
    rho = spearman(analytic_ms, des_ms)
    return FleetValidation(rho=rho, min_rho=min_rho,
                           rows=len(analytic_ms),
                           elapsed_s=time.perf_counter() - start)


# -- bench ------------------------------------------------------------------
@dataclass(frozen=True)
class FleetBenchResult:
    """Throughput of both backends on the bench population."""

    users: int
    population_visits: int
    sites: int
    cohorts: int
    bins: int
    seed: int
    rounds: int
    des_sample: int
    #: absent when numpy is not importable (fallback-only leg)
    vectorized_visits_per_s: Optional[float]
    fallback_visits_per_s: float
    des_visits: int
    des_visits_per_s: float
    elapsed_s: float

    @property
    def meets_floors(self) -> bool:
        if self.population_visits < FLEET_POPULATION_FLOOR:
            return False
        if self.vectorized_visits_per_s is not None \
                and self.vectorized_visits_per_s \
                < FLEET_VECTORIZED_FLOOR_PER_S:
            return False
        return (self.fallback_visits_per_s >= FLEET_FALLBACK_FLOOR_PER_S
                and self.des_visits_per_s >= FLEET_DES_FLOOR_PER_S)

    def format(self) -> str:
        vec = (f"{self.vectorized_visits_per_s:,.0f}/s "
               f"(floor {FLEET_VECTORIZED_FLOOR_PER_S:,.0f})"
               if self.vectorized_visits_per_s is not None
               else "n/a (numpy not installed)")
        lines = [
            f"population fleet bench: {self.users:,} users, "
            f"{self.population_visits:,} measured visits "
            f"(floor {FLEET_POPULATION_FLOOR:,}), {self.sites} sites, "
            f"{self.cohorts} cohorts, {self.bins} delay bins",
            f"  analytic vectorized : {vec}",
            f"  analytic fallback   : {self.fallback_visits_per_s:,.0f}/s "
            f"(floor {FLEET_FALLBACK_FLOOR_PER_S:,.0f})",
            f"  sampled DES         : {self.des_visits_per_s:,.1f} "
            f"visits/s over {self.des_visits} visits "
            f"(floor {FLEET_DES_FLOOR_PER_S:g})",
            f"  floors {'met' if self.meets_floors else 'MISSED'}; "
            f"total wall {self.elapsed_s:.1f}s",
        ]
        return "\n".join(lines)


def run_fleet_bench(users: int = 1_000_000,
                    measured: int = 50_000_000,
                    warmup: Optional[int] = None,
                    bins: int = 24,
                    rounds: int = 3,
                    des_sample: int = 24,
                    seed: int = 2024,
                    corpus: Optional[Corpus] = None,
                    config: Optional[BrowserConfig] = None
                    ) -> FleetBenchResult:
    """Throughput floors for the population engine, best-of-``rounds``.

    The analytic backends price the *same* million-user spec (cost is
    per grid cell, not per visit — that asymmetry is the whole point);
    the fallback leg runs one round because it is ~50× slower, and the
    DES leg times a small serial schedule sample.
    """
    spec = default_population(users=users, measured=measured,
                              warmup=warmup, seed=seed)
    if corpus is None:
        corpus = make_corpus()
    start = time.perf_counter()
    vectorized = None
    if numpy_available():
        best = min(
            run_fleet_analytic(spec, corpus, bins=bins,
                               backend="numpy").elapsed_s
            for _ in range(max(1, rounds)))
        vectorized = spec.n_measured / best
    fallback_result = run_fleet_analytic(spec, corpus, bins=bins,
                                         backend="python")
    fallback = spec.n_measured / fallback_result.elapsed_s
    des = run_fleet_des(spec, corpus, sample=des_sample, max_workers=0,
                        config=config)
    return FleetBenchResult(
        users=users, population_visits=spec.n_measured,
        sites=spec.n_sites, cohorts=len(spec.cohorts), bins=bins,
        seed=seed, rounds=rounds, des_sample=des_sample,
        vectorized_visits_per_s=vectorized,
        fallback_visits_per_s=fallback,
        des_visits=des.visits, des_visits_per_s=des.visits_per_s,
        elapsed_s=time.perf_counter() - start)


# -- artifact payloads ------------------------------------------------------
def fleet_payload(result: FleetResult,
                  des: Optional[FleetDesResult] = None,
                  validation: Optional[FleetValidation] = None) -> dict:
    """Machine-readable fleet-run record (``repro fleet --out``).

    ``report_html`` renders the per-cohort PLT-percentile section from
    exactly this shape.
    """
    def mode_dict(stats: ModeStats) -> dict:
        return {"mode": stats.mode,
                "mean_ms": round(stats.mean_ms, 2),
                "p50_ms": round(stats.p50_ms, 2),
                "p90_ms": round(stats.p90_ms, 2),
                "p99_ms": round(stats.p99_ms, 2),
                "origin_rps": round(stats.origin_rps, 2),
                "origin_mbps": round(stats.origin_mbps, 4),
                "hit_ratio": round(stats.hit_ratio, 4)}

    payload = {
        "bench": "population_fleet_run",
        "schema_version": 1,
        "users": result.users,
        "population_visits": result.population_visits,
        "alpha": result.alpha,
        "sites": result.sites,
        "bins": result.bins,
        "backend": result.backend,
        "elapsed_s": round(result.elapsed_s, 3),
        "visits_per_s": round(result.visits_per_s, 1),
        "cohorts": [{
            "name": cohort.name, "label": cohort.label,
            "share": round(cohort.share, 4),
            "visits": round(cohort.visits, 1),
            "cold_share": round(cohort.cold_share, 4),
            "modes": [mode_dict(stats) for stats in cohort.modes],
        } for cohort in result.cohorts],
        "fleet": [mode_dict(stats) for stats in result.fleet],
    }
    if des is not None:
        payload["des"] = {"visits": des.visits, "workers": des.workers,
                          "visits_per_s": round(des.visits_per_s, 2),
                          "cohorts": des.cohorts}
    if validation is not None:
        payload["validation"] = {"rho": round(validation.rho, 4),
                                 "min_rho": validation.min_rho,
                                 "rows": validation.rows,
                                 "passed": validation.passed}
    return payload


def fleet_bench_payload(result: FleetBenchResult) -> dict:
    """Manifest-stamped ``population_fleet`` record for the trajectory.

    Population shape and seed are the config identity; rounds are
    sampling effort.  The backend is *not* identity (PR-8 precedent):
    a no-numpy artifact is the same experiment with the vectorized key
    absent.
    """
    metrics = {
        "population_visits": result.population_visits,
        "analytic_visits_per_s_fallback": round(
            result.fallback_visits_per_s, 1),
        "des_visits_per_s": round(result.des_visits_per_s, 2),
    }
    if result.vectorized_visits_per_s is not None:
        metrics["analytic_visits_per_s_vectorized"] = round(
            result.vectorized_visits_per_s, 1)
    payload = {
        "bench": "population_fleet",
        "schema_version": 1,
        "params": {
            "users": result.users,
            "population_visits": result.population_visits,
            "sites": result.sites,
            "cohorts": result.cohorts,
            "bins": result.bins,
            "des_sample": result.des_sample,
        },
        "population_fleet": metrics,
        "floors": {
            "population_visits": FLEET_POPULATION_FLOOR,
            "analytic_visits_per_s_vectorized":
                FLEET_VECTORIZED_FLOOR_PER_S,
            "analytic_visits_per_s_fallback": FLEET_FALLBACK_FLOOR_PER_S,
            "des_visits_per_s": FLEET_DES_FLOOR_PER_S,
        },
        "meets_floors": result.meets_floors,
    }
    return stamp(payload, build_manifest(
        config={"bench": "population_fleet", "users": result.users,
                "population_visits": result.population_visits,
                "sites": result.sites, "cohorts": result.cohorts,
                "bins": result.bins, "seed": result.seed,
                "des_sample": result.des_sample},
        sampling={"rounds": result.rounds},
        seeds=[result.seed],
        wall_time_s=result.elapsed_s or None,
    ))
