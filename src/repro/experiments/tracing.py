"""Traced visit capture: one call, one cross-layer trace.

The glue between the experiment harness and :mod:`repro.obs` — run a
cold+warm visit sequence with a live tracer and hand back every export
shape (Chrome trace JSON for Perfetto, JSONL event log, trace-enriched
HAR).  Used by ``python -m repro trace`` and the end-to-end
observability tests, so both exercise exactly the same path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..browser.engine import BrowserConfig
from ..browser.trace import to_har
from ..core.catalyst import VisitOutcome, run_visit_sequence
from ..core.modes import CachingMode, build_mode
from ..netsim.faults import FaultPlan
from ..netsim.link import NetworkConditions
from ..obs import (Tracer, enrich_har, format_self_times, to_chrome_trace,
                   to_chrome_trace_json, to_collapsed, to_jsonl)
from ..workload.sitegen import generate_site

__all__ = ["TraceCapture", "capture_visit_trace", "fleet_chrome_trace",
           "fleet_chrome_trace_json"]


def fleet_chrome_trace(spans: Sequence[dict]) -> dict:
    """One Perfetto-loadable trace from merged pid-stamped span records.

    ``spans`` is what a traced load test leaves in
    ``LoadTestResult.spans``: driver-client and fleet-worker records
    (:func:`repro.obs.export.span_to_dict` shape) concatenated in
    arbitrary arrival order.  Sorting by start time keeps the emitted
    event stream stable across runs of the same capture, which makes
    the artifact diffable; the pid namespacing inside
    :func:`to_chrome_trace` keeps per-worker span IDs from aliasing so
    a client ``http.request`` can parent a ``server.request`` in
    another process.
    """
    ordered = sorted(spans, key=lambda s: (s.get("start_s", 0.0),
                                           s.get("pid", 0),
                                           s.get("span_id", 0)))
    return to_chrome_trace(ordered)


def fleet_chrome_trace_json(spans: Sequence[dict],
                            indent: Optional[int] = None) -> str:
    import json
    return json.dumps(fleet_chrome_trace(spans), indent=indent)


@dataclass
class TraceCapture:
    """A completed traced run plus its exporters."""

    outcomes: list[VisitOutcome]
    tracer: Tracer

    @property
    def trace_id(self) -> str:
        return self.tracer.trace_id

    def chrome_trace(self) -> dict:
        """Trace Event Format dict (Perfetto / chrome://tracing)."""
        return to_chrome_trace(self.tracer)

    def chrome_trace_json(self, indent: Optional[int] = None) -> str:
        return to_chrome_trace_json(self.tracer, indent=indent)

    def jsonl(self) -> str:
        """One JSON object per finished span (structured event log)."""
        return to_jsonl(self.tracer)

    def har(self, visit: int = -1) -> dict:
        """HAR of one visit (default: the last), trace-enriched."""
        har = to_har(self.outcomes[visit].result)
        return enrich_har(har, self.tracer, trace_id=self.trace_id)

    def flamegraph(self) -> str:
        """Collapsed-stack self-time profile (speedscope / inferno /
        flamegraph.pl input), weights in sim-microseconds."""
        return to_collapsed(self.tracer)

    def self_time_table(self, top: int = 12) -> str:
        """Human table of the heaviest spans by exclusive time."""
        return format_self_times(self.tracer, top=top)

    def summary(self) -> dict:
        plts = [round(outcome.plt_ms, 1) for outcome in self.outcomes]
        return dict(self.tracer.summary(), visits=len(self.outcomes),
                    plt_ms=plts)


def capture_visit_trace(page_url: str = "/index.html",
                        mode: CachingMode = CachingMode.CATALYST,
                        seed: int = 7,
                        conditions: Optional[NetworkConditions] = None,
                        visit_times_s: Sequence[float] = (0.0, 86_400.0),
                        fault_plan: Optional[FaultPlan] = None,
                        browser_config: Optional[BrowserConfig] = None,
                        tracer: Optional[Tracer] = None) -> TraceCapture:
    """Run a traced visit sequence against a synthetic site.

    Defaults mirror ``python -m repro visit``: a seed-7 site on
    median-5G-ish conditions, cold visit plus a one-day-later revisit,
    CacheCatalyst mode.  Every layer the sequence touches (netsim link,
    browser engine, SW cache, origin server) lands in one trace.
    """
    if conditions is None:
        conditions = NetworkConditions.of(60, 40)
    if tracer is None:
        tracer = Tracer()
    site = generate_site(f"https://trace{seed}.example", seed=seed)
    setup = build_mode(mode, site, browser_config) \
        if browser_config is not None else build_mode(mode, site)
    outcomes = run_visit_sequence(setup, conditions, list(visit_times_s),
                                  page_url=page_url,
                                  fault_plan=fault_plan, tracer=tracer)
    return TraceCapture(outcomes=outcomes, tracer=tracer)
