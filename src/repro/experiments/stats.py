"""Statistics helpers for experiment aggregation.

The paper reports means; a reproduction should also say how tight they
are.  These helpers (plain Python, deterministic bootstrap) feed the
summary layers: robust central tendencies, spread, and confidence
intervals over per-site measurements.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence

__all__ = ["Summary", "summarize", "mean", "median", "percentile",
           "stdev", "bootstrap_ci", "spearman", "weighted_percentiles"]


def spearman(a: Sequence[float], b: Sequence[float]) -> float:
    """Spearman rank correlation of two paired sequences.

    Ranks are assigned by sort order (ties broken by position — the
    sequences here are continuous measurements, so exact ties are rare
    and the simplification is harmless).  Degenerate inputs (constant
    sequences, n < 2) return 1.0 so callers gating on a floor do not
    crash on trivial grids.

    >>> spearman([1.0, 2.0, 3.0], [10.0, 20.0, 30.0])
    1.0
    >>> spearman([1.0, 2.0, 3.0], [30.0, 20.0, 10.0])
    -1.0
    """
    if len(a) != len(b):
        raise ValueError(f"length mismatch: {len(a)} vs {len(b)}")

    def ranks(values: Sequence[float]) -> list[float]:
        order = sorted(range(len(values)), key=values.__getitem__)
        rank = [0.0] * len(values)
        for position, index in enumerate(order):
            rank[index] = float(position)
        return rank

    n = len(a)
    if n < 2:
        return 1.0
    ra, rb = ranks(a), ranks(b)
    centre = (n - 1) / 2.0
    cov = sum((x - centre) * (y - centre) for x, y in zip(ra, rb))
    var = sum((x - centre) ** 2 for x in ra)
    return cov / var if var else 1.0


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input.

    >>> mean([1.0, 2.0, 3.0])
    2.0
    """
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def median(values: Sequence[float]) -> float:
    """Median (midpoint of the two central values for even n).

    >>> median([4.0, 1.0, 3.0, 2.0])
    2.5
    """
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, ``q`` in [0, 100].

    >>> percentile([1.0, 2.0, 3.0, 4.0], 50)
    2.5
    >>> percentile([1.0, 2.0, 3.0, 4.0], 100)
    4.0
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile out of range: {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * q / 100.0
    low = int(math.floor(position))
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


def weighted_percentiles(values: Sequence[float],
                         weights: Sequence[float],
                         qs: Sequence[float]) -> list[float]:
    """Nearest-rank percentiles of a *weighted* sample.

    The population engine prices a fleet as a few thousand analytic
    cells, each standing in for millions of visits; percentiles over
    those cells must weight by expected visit count, not cell count.
    Returns the smallest value whose cumulative weight reaches
    ``q/100`` of the total (exact for the step CDF a weighted discrete
    sample defines).

    >>> weighted_percentiles([1.0, 2.0, 3.0], [1.0, 1.0, 98.0], [50, 99])
    [3.0, 3.0]
    >>> weighted_percentiles([1.0, 2.0], [3.0, 1.0], [50])
    [1.0]
    """
    if len(values) != len(weights):
        raise ValueError(f"length mismatch: {len(values)} values vs "
                         f"{len(weights)} weights")
    if not values:
        raise ValueError("weighted percentile of empty sequence")
    if any(w < 0 for w in weights):
        raise ValueError("weights must be nonnegative")
    total = float(sum(weights))
    if total <= 0.0:
        raise ValueError("weights must not sum to zero")
    pairs = sorted(zip(values, weights))
    out = []
    for q in qs:
        if not 0 <= q <= 100:
            raise ValueError(f"percentile out of range: {q}")
        target = total * q / 100.0
        acc = 0.0
        result = pairs[-1][0]
        for value, weight in pairs:
            acc += weight
            # tolerate float round-off at exact cumulative boundaries
            if acc >= target - 1e-9 * total:
                result = value
                break
        out.append(result)
    return out


def stdev(values: Sequence[float]) -> float:
    """Sample standard deviation (0 for n < 2)."""
    if len(values) < 2:
        return 0.0
    centre = mean(values)
    return math.sqrt(sum((v - centre) ** 2 for v in values)
                     / (len(values) - 1))


def bootstrap_ci(values: Sequence[float], confidence: float = 0.95,
                 resamples: int = 2000, seed: int = 0) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval of the mean.

    Deterministic given ``seed``; degenerate inputs collapse to a point.
    """
    if not values:
        raise ValueError("bootstrap of empty sequence")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence out of (0,1): {confidence}")
    if len(values) == 1:
        return (values[0], values[0])
    rng = random.Random(seed)
    n = len(values)
    means = []
    for _ in range(resamples):
        sample = [values[rng.randrange(n)] for _ in range(n)]
        means.append(sum(sample) / n)
    alpha = (1.0 - confidence) / 2.0 * 100.0
    return (percentile(means, alpha), percentile(means, 100.0 - alpha))


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of one metric across sites."""

    n: int
    mean: float
    median: float
    stdev: float
    p10: float
    p90: float
    ci_low: float
    ci_high: float

    def format(self, unit: str = "") -> str:
        suffix = unit and f" {unit}"
        return (f"mean {self.mean:.1f}{suffix} "
                f"(95% CI [{self.ci_low:.1f}, {self.ci_high:.1f}]), "
                f"median {self.median:.1f}{suffix}, "
                f"p10-p90 [{self.p10:.1f}, {self.p90:.1f}], n={self.n}")


def summarize(values: Sequence[float], seed: int = 0) -> Summary:
    """Build a :class:`Summary` (deterministic bootstrap CI)."""
    low, high = bootstrap_ci(values, seed=seed)
    return Summary(
        n=len(values),
        mean=mean(values),
        median=median(values),
        stdev=stdev(values),
        p10=percentile(values, 10),
        p90=percentile(values, 90),
        ci_low=low,
        ci_high=high,
    )
