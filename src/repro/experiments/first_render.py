"""First-render improvement — the metric the paper defers (§6).

The paper measures only ``onLoad`` PLT and explicitly postpones FCP /
Speed Index / TTI.  Our loader already tracks a first-render
approximation (HTML parsed + every render-blocking resource done), so
this experiment delivers a first cut of that future work: does
CacheCatalyst improve *perceived* readiness as much as full PLT?

Finding: yes — first-render gains are substantial (≈40-45 % at the 5G
anchor) though a few points below the PLT gains, because the base-HTML
revalidation (which CacheCatalyst cannot remove — the map rides on it)
is a larger fraction of the shorter first-render window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..browser.engine import BrowserConfig
from ..core.catalyst import run_visit_sequence
from ..core.modes import CachingMode, build_mode
from ..netsim.clock import DAY
from ..netsim.link import NetworkConditions
from ..workload.corpus import Corpus, make_corpus
from .report import format_pct, format_table

__all__ = ["FirstRenderResult", "run_first_render", "format_first_render"]


@dataclass(frozen=True)
class FirstRenderResult:
    """Mean reductions for one network condition."""

    conditions: str
    plt_reduction: float
    first_render_reduction: float
    pairs: int


def run_first_render(corpus: Optional[Corpus] = None,
                     conditions_list: Sequence[NetworkConditions] = (
                         NetworkConditions.of(60, 40),
                         NetworkConditions.of(60, 100)),
                     delay_s: float = DAY,
                     sites: int = 6,
                     base_config: Optional[BrowserConfig] = None
                     ) -> list[FirstRenderResult]:
    """Warm-visit PLT vs first-render reduction, catalyst vs standard.

    ``base_config=None`` means a fresh default per call.
    """
    if base_config is None:
        base_config = BrowserConfig()
    if corpus is None:
        corpus = make_corpus()
    subset = corpus.sample(sites, seed=13).frozen()
    results = []
    for conditions in conditions_list:
        plt_reductions = []
        render_reductions = []
        for site in subset:
            warm = {}
            for mode in (CachingMode.STANDARD, CachingMode.CATALYST):
                setup = build_mode(mode, site, base_config)
                outcomes = run_visit_sequence(setup, conditions,
                                              [0.0, delay_s])
                warm[mode] = outcomes[1].result
            std, cat = warm[CachingMode.STANDARD], warm[CachingMode.CATALYST]
            if std.plt_ms > 0:
                plt_reductions.append(
                    (std.plt_ms - cat.plt_ms) / std.plt_ms)
            if std.first_render_ms and std.first_render_ms > 0:
                render_reductions.append(
                    (std.first_render_ms - cat.first_render_ms)
                    / std.first_render_ms)
        results.append(FirstRenderResult(
            conditions=conditions.describe(),
            plt_reduction=sum(plt_reductions) / len(plt_reductions),
            first_render_reduction=(sum(render_reductions)
                                    / len(render_reductions)),
            pairs=len(plt_reductions)))
    return results


def format_first_render(results: list[FirstRenderResult]) -> str:
    return format_table(
        ["condition", "PLT reduction", "first-render reduction"],
        [[r.conditions, format_pct(r.plt_reduction),
          format_pct(r.first_render_reduction)] for r in results])
