"""§2.2 motivation statistics, measured on the synthetic corpus.

The paper motivates the redesign with three measurement findings from
prior studies; the corpus's header and churn models are calibrated to
reproduce them, and this module *measures* them (rather than restating
the calibration constants) so the workload can be audited:

- [Liu et al.]     ~40 % of resources carry a TTL below one day...
- [Liu et al.]     ...yet ~86 % of those do not change within that day.
- [Ramanujam et al.] ~47 % of resources expire in cache despite unchanged
  content.
- [several]        only ~50 % of cacheable resources are actually cached.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netsim.clock import DAY, WEEK
from ..workload.corpus import Corpus, make_corpus
from .report import format_pct, format_table

__all__ = ["MotivationStats", "measure_motivation"]


@dataclass(frozen=True)
class MotivationStats:
    """Corpus-wide header/churn statistics."""

    total_resources: int
    #: share of resources whose headers allow reuse without validation
    #: (the "actually cached" share; paper cites ≈50 %)
    effectively_cached_share: float
    #: share of TTL'd resources with TTL < 1 day (paper cites 40 %)
    short_ttl_share: float
    #: of those, share that do NOT change within a day (paper cites 86 %)
    short_ttl_unchanged_share: float
    #: share of cacheable resources that expire while unchanged
    #: (paper cites 47 %)
    expire_unchanged_share: float

    def format(self) -> str:
        rows = [
            ("cacheable resources actually cached",
             format_pct(self.effectively_cached_share), "~50%"),
            ("resources with TTL < 1 day",
             format_pct(self.short_ttl_share), "40%"),
            ("of those, unchanged within the day",
             format_pct(self.short_ttl_unchanged_share), "86%"),
            ("expire in cache while unchanged",
             format_pct(self.expire_unchanged_share), "47%"),
        ]
        return format_table(["statistic", "measured", "paper"], rows)


def measure_motivation(corpus: Corpus | None = None) -> MotivationStats:
    """Measure the §2.2 statistics over the corpus's resource population.

    "Expire while unchanged" follows Ramanujam et al.'s framing: over an
    observation window (one week — their study horizon), the share of
    *all* resources that hit cache expiry with content identical to what
    was cached (``no-cache`` counts with TTL 0 — it is *always* expired,
    and usually unchanged).
    """
    if corpus is None:
        corpus = make_corpus()

    total = 0
    reusable = 0            # max-age > 0: the browser may skip the network
    ttl_count = 0           # resources carrying an explicit finite TTL
    short_ttl = 0
    short_ttl_unchanged = 0
    expire_unchanged = 0

    for site in corpus:
        for spec in site.index.iter_resources():
            total += 1
            policy = spec.policy
            churn = spec.make_churn()
            if policy.allows_reuse_without_validation and not spec.dynamic:
                reusable += 1
            if policy.mode == "max-age":
                ttl_count += 1
                if policy.ttl_s < DAY:
                    short_ttl += 1
                    if not churn.changed_between(0.0, DAY):
                        short_ttl_unchanged += 1
            if policy.mode in ("max-age", "no-cache") and not spec.dynamic:
                expiry = policy.ttl_s if policy.mode == "max-age" else 0.0
                if expiry < WEEK \
                        and not churn.changed_between(0.0, max(expiry, 1.0)):
                    expire_unchanged += 1

    return MotivationStats(
        total_resources=total,
        effectively_cached_share=reusable / total if total else 0.0,
        short_ttl_share=short_ttl / ttl_count if ttl_count else 0.0,
        short_ttl_unchanged_share=(short_ttl_unchanged / short_ttl
                                   if short_ttl else 0.0),
        expire_unchanged_share=expire_unchanged / total if total else 0.0,
    )
