"""Simulation-core throughput benchmark (the BENCH_PR5 artifact).

Three wall-clock probes, one per layer of the fast path:

- **events/sec** — pure timeout churn through the DES kernel: four
  processes racing ``sim.timeout()`` loops.  Exercises the heap loop,
  the lazy callback lists and the timeout free-list, nothing else.
- **transfers/sec** — processor-sharing pipe churn: eight feeders
  pushing back-to-back transfers through one
  :class:`~repro.netsim.link.ProcessorSharingPipe`, so every arrival and
  departure re-divides the bottleneck.  Exercises the lazy-invalidation
  reschedule.
- **visits/sec** — :func:`~repro.experiments.harness.measure_pair`
  cold+warm pairs in both modes: the grid's actual unit of work,
  end-to-end through browser model, servers and parse/render caches.

The pre-PR baselines below were measured on the seed kernel with this
exact methodology (same workloads, counts and seeds) immediately before
the fast-path work landed, so ``speedup_vs_pre_pr5`` in the payload is a
like-for-like in-repo trajectory, not a cross-machine guess.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.modes import CachingMode
from ..netsim.link import NetworkConditions, ProcessorSharingPipe
from ..netsim.sim import Simulator
from ..obs.manifest import build_manifest, stamp
from ..workload.sitegen import generate_site
from .harness import measure_pair

__all__ = ["SimCoreResult", "run_simcore", "format_simcore",
           "simcore_bench_payload", "PRE_PR5_BASELINE"]

#: Seed-kernel throughput measured with this module's exact workloads
#: before the PR-5 fast path (same machine class the gate runs on keeps
#: these honest; the regression gate compares artifacts, not these).
PRE_PR5_BASELINE = {
    "events_per_s": 393_189.0,
    "transfers_per_s": 132_431.0,
    "visits_per_s": 26.5,
}


@dataclass(frozen=True, slots=True)
class SimCoreResult:
    """Wall-clock throughput of the three simulation-core layers."""

    events: int
    events_per_s: float
    transfers: int
    transfers_per_s: float
    visits: int
    visits_per_s: float
    #: workload seed (manifest identity) and total probe wall seconds
    seed: int = 21
    elapsed_s: float = 0.0

    def speedup_vs_pre_pr5(self, metric: str) -> float:
        baseline = PRE_PR5_BASELINE[metric]
        return getattr(self, metric) / baseline if baseline > 0 else 0.0


def _bench_events(n_events: int) -> float:
    """Timeout churn: events dispatched per wall-clock second."""

    def ping(sim: Simulator, n: int):
        for _ in range(n):
            yield sim.timeout(0.001)

    sim = Simulator()
    for _ in range(4):
        sim.process(ping(sim, n_events // 4))
    start = time.perf_counter()
    sim.run()
    return n_events / (time.perf_counter() - start)


def _bench_transfers(n_transfers: int) -> float:
    """Pipe churn: completed shared-bottleneck transfers per second."""

    def feeder(sim: Simulator, pipe: ProcessorSharingPipe, n: int):
        for i in range(n):
            yield pipe.transfer(2000 + (i % 7) * 501)

    sim = Simulator()
    pipe = ProcessorSharingPipe(sim, 8e6)
    for _ in range(8):
        sim.process(feeder(sim, pipe, n_transfers // 8))
    start = time.perf_counter()
    sim.run()
    return n_transfers / (time.perf_counter() - start)


def _bench_visits(n_pairs: int, seed: int) -> tuple[int, float]:
    """Full measure_pair loops: simulated page visits per second."""
    site = generate_site("https://bench0.example", seed=seed)
    conditions = NetworkConditions.of(8, 100)
    measure_pair(site, CachingMode.CATALYST, conditions, 3600.0)  # warm-up
    start = time.perf_counter()
    for _ in range(n_pairs):
        for mode in (CachingMode.STANDARD, CachingMode.CATALYST):
            measure_pair(site, mode, conditions, 3600.0)
    visits = n_pairs * 2 * 2  # two modes, cold+warm each
    return visits, visits / (time.perf_counter() - start)


def run_simcore(events: int = 200_000, transfers: int = 20_000,
                pairs: int = 30, seed: int = 21,
                rounds: int = 3) -> SimCoreResult:
    """Run all three probes and fold the throughputs.

    Each probe runs ``rounds`` times and keeps its best; scheduler
    jitter only ever slows a run down, so best-of-N measures the code
    rather than the CI box's load and keeps the 10 % regression gate
    from tripping on noise.
    """
    started = time.perf_counter()
    events_per_s = max(_bench_events(events) for _ in range(rounds))
    transfers_per_s = max(_bench_transfers(transfers)
                          for _ in range(rounds))
    visits = 0
    visits_per_s = 0.0
    for _ in range(rounds):
        visits, rate = _bench_visits(pairs, seed)
        visits_per_s = max(visits_per_s, rate)
    return SimCoreResult(
        events=events, events_per_s=events_per_s,
        transfers=transfers, transfers_per_s=transfers_per_s,
        visits=visits, visits_per_s=visits_per_s,
        seed=seed, elapsed_s=time.perf_counter() - started,
    )


def format_simcore(result: SimCoreResult) -> str:
    from .report import format_table
    rows = []
    for label, key, count in (
            ("events/s (DES kernel)", "events_per_s", result.events),
            ("transfers/s (PS pipe)", "transfers_per_s", result.transfers),
            ("visits/s (measure_pair)", "visits_per_s", result.visits)):
        rows.append([label, f"{getattr(result, key):,.1f}",
                     f"{PRE_PR5_BASELINE[key]:,.1f}",
                     f"{result.speedup_vs_pre_pr5(key):.2f}x",
                     f"{count:,}"])
    return format_table(
        ["probe", "throughput", "pre-PR5 baseline", "speedup", "n"], rows)


def simcore_bench_payload(result: SimCoreResult) -> dict:
    """Machine-readable record for the ``BENCH_*.json`` trajectory."""
    payload = {
        "bench": "simcore",
        "schema_version": 1,
        "params": {
            "events": result.events,
            "transfers": result.transfers,
            "visits": result.visits,
        },
        "simcore": {
            "events_per_s": round(result.events_per_s, 1),
            "transfers_per_s": round(result.transfers_per_s, 1),
            "visits_per_s": round(result.visits_per_s, 2),
        },
        "baseline_pre_pr5": dict(PRE_PR5_BASELINE),
        "speedup_vs_pre_pr5": {
            key: round(result.speedup_vs_pre_pr5(key), 2)
            for key in PRE_PR5_BASELINE
        },
    }
    # The probe sizes define the workload identity; best-of-N rounds
    # are sampling effort and may differ between comparable runs.
    return stamp(payload, build_manifest(
        config={"bench": "simcore", "events": result.events,
                "transfers": result.transfers, "visits": result.visits,
                "seed": result.seed},
        seeds=[result.seed],
        wall_time_s=result.elapsed_s or None,
    ))
