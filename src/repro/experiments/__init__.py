"""Experiment harness: every figure/claim in the paper, regenerable."""

from .cross_page import (CrossPageResult, format_cross_page,
                         make_multipage_site, run_cross_page)
from .figure1 import (FIGURE1_REVISIT_DELAY_S, Figure1Panels,
                      build_figure1_site, run_figure1)
from .figure3 import (HEADLINE_CONDITION, PAPER_REVISIT_DELAYS_S,
                      Figure3Cell, Figure3Result, run_figure3)
from .first_render import (FirstRenderResult, format_first_render,
                           run_first_render)
from .fleet import (DEFAULT_FLEET_COHORTS, CohortFleet, FleetDesResult,
                    FleetResult, FleetValidation, default_population,
                    run_fleet_analytic, run_fleet_bench, run_fleet_des,
                    validate_fleet)
from .harness import GridResult, PairMeasurement, measure_pair, run_grid
from .motivation import MotivationStats, measure_motivation
from .parallel import run_grid_parallel
from .stats import (Summary, bootstrap_ci, mean, median, percentile,
                    stdev, summarize)
from .server_load import (ServerLoadResult, format_server_load,
                          run_server_load)
from .user_weighted import UserWeightedResult, run_user_weighted
from .report_html import build_report, write_report
from .report import format_grid, format_pct, format_table

__all__ = [
    "measure_pair", "run_grid", "run_grid_parallel", "PairMeasurement",
    "GridResult",
    "run_figure1", "build_figure1_site", "Figure1Panels",
    "FIGURE1_REVISIT_DELAY_S",
    "run_figure3", "Figure3Result", "Figure3Cell",
    "PAPER_REVISIT_DELAYS_S", "HEADLINE_CONDITION",
    "measure_motivation", "MotivationStats",
    "run_cross_page", "CrossPageResult", "format_cross_page",
    "make_multipage_site",
    "run_first_render", "FirstRenderResult", "format_first_render",
    "format_table", "format_grid", "format_pct",
    "Summary", "summarize", "mean", "median", "percentile", "stdev",
    "bootstrap_ci",
    "run_fleet_analytic", "run_fleet_des", "run_fleet_bench",
    "validate_fleet", "default_population", "DEFAULT_FLEET_COHORTS",
    "FleetResult", "FleetDesResult", "FleetValidation", "CohortFleet",
    "run_user_weighted", "UserWeightedResult",
    "run_server_load", "ServerLoadResult", "format_server_load",
    "build_report", "write_report",
]
