"""The experiment runner: corpus × network grid × caching mode.

A *measurement pair* is the paper's unit of evaluation: load a page cold
at t=0, reload it after a revisit delay, and record both PLTs plus the
traffic/caching breakdown of the warm visit.  The harness sweeps pairs
over sites, network conditions, modes and delays, and audits warm visits
for staleness against the origin's ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from ..browser.engine import BrowserConfig
from ..browser.metrics import FetchSource, PageLoadResult
from ..core.catalyst import run_visit_sequence
from ..core.modes import CachingMode, build_mode
from ..netsim.link import NetworkConditions
from ..server.site import OriginSite
from ..workload.corpus import Corpus
from ..workload.sitegen import SiteSpec

__all__ = ["PairMeasurement", "measure_pair", "run_grid", "GridResult",
           "record_fleet_metrics", "fleet_summary", "CACHE_SOURCES"]

#: warm-visit sources that count as cache hits in the fleet hit ratio
CACHE_SOURCES = ("http-cache", "sw-cache", "offline-cache")


@dataclass(frozen=True, slots=True)
class PairMeasurement:
    """Cold + warm load of one site in one mode under one condition.

    ``slots=True`` matters at grid scale: a full sweep materializes tens
    of thousands of these (and pickles each across the process-pool
    boundary), so dropping the per-instance ``__dict__`` shrinks both
    resident size and pickle payloads.
    """

    origin: str
    mode: str
    conditions: str
    delay_s: float
    cold_plt_ms: float
    warm_plt_ms: float
    cold_bytes: int
    warm_bytes: int
    warm_requests: int
    #: warm-visit acquisitions by source (network / sw-cache / ...)
    warm_sources: dict[str, int] = field(default_factory=dict, hash=False)
    #: cache hits whose content no longer matched the origin (staleness)
    warm_stale_hits: int = 0
    #: network retries the warm visit burned (fault-injection runs)
    warm_retries: int = 0

    @property
    def reduction(self) -> float:
        """Fractional warm-PLT reduction relative to the cold load."""
        if self.cold_plt_ms <= 0:
            return 0.0
        return (self.cold_plt_ms - self.warm_plt_ms) / self.cold_plt_ms


def _stale_hits(result: PageLoadResult, site_spec: SiteSpec,
                at_time: float) -> int:
    """Cache hits whose served content differs from the origin's current.

    Uses a pristine :class:`OriginSite` as the ground-truth oracle, so
    counting never perturbs the measured servers.
    """
    oracle = OriginSite(site_spec)
    stale = 0
    for event in result.events:
        if event.source not in (FetchSource.HTTP_CACHE,
                                FetchSource.SW_CACHE):
            continue
        current = oracle.etag_of(event.url, at_time)
        if current is not None and event.served_etag \
                and event.served_etag != current:
            stale += 1
    return stale


def measure_pair(site_spec: SiteSpec, mode: CachingMode,
                 conditions: NetworkConditions, delay_s: float,
                 base_config: Optional[BrowserConfig] = None,
                 audit_staleness: bool = False,
                 tracer=None) -> PairMeasurement:
    """Run one cold+warm pair and summarize it.

    ``tracer`` (a :class:`repro.obs.Tracer`) records both visits'
    spans — one trace covering cold and warm, on the sim clock.
    ``base_config=None`` means a fresh default per call.
    """
    if base_config is None:
        base_config = BrowserConfig()
    setup = build_mode(mode, site_spec, base_config)
    outcomes = run_visit_sequence(setup, conditions, [0.0, delay_s],
                                  tracer=tracer)
    cold, warm = outcomes[0].result, outcomes[1].result
    return PairMeasurement(
        origin=site_spec.origin,
        mode=mode.value,
        conditions=conditions.describe(),
        delay_s=delay_s,
        cold_plt_ms=cold.plt_ms,
        warm_plt_ms=warm.plt_ms,
        cold_bytes=cold.bytes_down,
        warm_bytes=warm.bytes_down,
        warm_requests=warm.request_count,
        warm_sources={source.value: count for source, count
                      in warm.count_by_source().items()},
        warm_stale_hits=(_stale_hits(warm, site_spec, delay_s)
                         if audit_staleness else 0),
        warm_retries=warm.retries_total,
    )


def record_fleet_metrics(measurements: Sequence[PairMeasurement],
                         metrics) -> None:
    """Fold finished measurements into ``fleet.*`` series.

    Strictly post-hoc: runs after the DES produced its (deterministic)
    measurements, so recording can never perturb a simulated timestamp.
    The same folding runs serially in :func:`run_grid` and per-worker
    in :func:`~repro.experiments.parallel.run_grid_parallel`; because
    counters and sketch merges are associative, the merged fleet view
    equals the serial one.
    """
    for m in measurements:
        metrics.counter("fleet.pairs").inc()
        metrics.histogram("fleet.plt_cold_ms").observe(m.cold_plt_ms)
        metrics.histogram("fleet.plt_warm_ms").observe(m.warm_plt_ms)
        metrics.histogram(f"fleet.plt_warm_ms.{m.mode}") \
            .observe(m.warm_plt_ms)
        metrics.counter("fleet.warm_requests").inc(m.warm_requests)
        metrics.counter("fleet.warm_retries").inc(m.warm_retries)
        metrics.counter("fleet.warm_stale_hits").inc(m.warm_stale_hits)
        for source, n in sorted(m.warm_sources.items()):
            metrics.counter(f"fleet.warm_source.{source}").inc(n)


def fleet_summary(metrics) -> dict:
    """One dict answering "how did the fleet do": PLT percentiles by
    cold/warm (and per mode), the cache-hit ratio, retries."""
    out: dict = {"pairs": 0, "plt_ms": {}, "cache_hit_ratio": 0.0,
                 "warm_retries": 0, "warm_stale_hits": 0}
    pairs = metrics.get("fleet.pairs")
    if pairs is not None:
        out["pairs"] = pairs.value
    for instrument in metrics:
        name = getattr(instrument, "name", "")
        if name.startswith("fleet.plt_") and hasattr(instrument,
                                                     "percentile"):
            out["plt_ms"][name[len("fleet.plt_"):]] = {
                "p50": instrument.percentile(50),
                "p90": instrument.percentile(90),
                "p99": instrument.percentile(99),
            }
    hits = sum(metrics.get(f"fleet.warm_source.{source}").value
               for source in CACHE_SOURCES
               if metrics.get(f"fleet.warm_source.{source}") is not None)
    total = sum(instrument.value for instrument in metrics
                if getattr(instrument, "name", "")
                .startswith("fleet.warm_source."))
    if total:
        out["cache_hit_ratio"] = hits / total
    retries = metrics.get("fleet.warm_retries")
    if retries is not None:
        out["warm_retries"] = retries.value
    stale = metrics.get("fleet.warm_stale_hits")
    if stale is not None:
        out["warm_stale_hits"] = stale.value
    return out


@dataclass(slots=True)
class GridResult:
    """All measurements of a sweep plus slicing helpers."""

    measurements: list[PairMeasurement]

    def where(self, mode: Optional[str] = None,
              conditions: Optional[str] = None,
              delay_s: Optional[float] = None) -> list[PairMeasurement]:
        out = self.measurements
        if mode is not None:
            out = [m for m in out if m.mode == mode]
        if conditions is not None:
            out = [m for m in out if m.conditions == conditions]
        if delay_s is not None:
            out = [m for m in out if m.delay_s == delay_s]
        return out

    def mean_warm_plt(self, **filters) -> float:
        rows = self.where(**filters)
        if not rows:
            raise ValueError(f"no measurements match {filters}")
        return sum(m.warm_plt_ms for m in rows) / len(rows)

    def reductions_vs(self, baseline_mode: str, target_mode: str,
                      conditions: Optional[str] = None,
                      delay_s: Optional[float] = None) -> list[float]:
        """Per-(site, delay) fractional warm-PLT reductions."""
        base = {(m.origin, m.delay_s, m.conditions): m.warm_plt_ms
                for m in self.where(mode=baseline_mode,
                                    conditions=conditions,
                                    delay_s=delay_s)}
        reductions = []
        for m in self.where(mode=target_mode, conditions=conditions,
                            delay_s=delay_s):
            key = (m.origin, m.delay_s, m.conditions)
            baseline_plt = base.get(key)
            if baseline_plt and baseline_plt > 0:
                reductions.append(
                    (baseline_plt - m.warm_plt_ms) / baseline_plt)
        if not reductions:
            raise ValueError("no overlapping measurements to compare")
        return reductions

    def mean_reduction_vs(self, baseline_mode: str, target_mode: str,
                          conditions: Optional[str] = None,
                          delay_s: Optional[float] = None) -> float:
        """Mean per-(site, delay) fractional warm-PLT reduction."""
        reductions = self.reductions_vs(baseline_mode, target_mode,
                                        conditions=conditions,
                                        delay_s=delay_s)
        return sum(reductions) / len(reductions)

    def reduction_summary(self, baseline_mode: str, target_mode: str,
                          conditions: Optional[str] = None,
                          delay_s: Optional[float] = None):
        """Full :class:`~repro.experiments.stats.Summary` of reductions."""
        from .stats import summarize
        return summarize(self.reductions_vs(baseline_mode, target_mode,
                                            conditions=conditions,
                                            delay_s=delay_s))


def run_grid(sites: Corpus | Sequence[SiteSpec],
             modes: Iterable[CachingMode],
             conditions_list: Iterable[NetworkConditions],
             delays_s: Iterable[float],
             base_config: Optional[BrowserConfig] = None,
             audit_staleness: bool = False,
             progress: Optional[Callable[[str], None]] = None,
             tracer=None, metrics=None) -> GridResult:
    """Sweep the full cross product; deterministic output order.

    A ``tracer`` accumulates spans across every cell of the sweep (each
    pair rebinds it to that pair's sim clock); the ring bounds retention.
    A ``metrics`` registry (:class:`repro.obs.MetricsRegistry`) receives
    the ``fleet.*`` series after the sweep — post-hoc, so measurements
    are byte-identical with or without it.
    ``base_config=None`` means a fresh default per call.
    """
    if base_config is None:
        base_config = BrowserConfig()
    measurements: list[PairMeasurement] = []
    site_list = list(sites)
    for conditions in conditions_list:
        for mode in modes:
            for delay_s in delays_s:
                for site_spec in site_list:
                    measurements.append(measure_pair(
                        site_spec, mode, conditions, delay_s,
                        base_config=base_config,
                        audit_staleness=audit_staleness,
                        tracer=tracer))
                if progress is not None:
                    progress(f"{conditions.describe()} {mode.value} "
                             f"delay={delay_s:g}s done")
    if metrics is not None:
        record_fleet_metrics(measurements, metrics)
    return GridResult(measurements=measurements)
