"""Extreme Cache baseline (Raza et al., paper §5).

A proxy between clients and servers that *estimates* each object's change
rate and overwrites its cache headers with the estimated TTL — caching by
prediction instead of by developer configuration.

The paper's criticisms, both of which this model measures:

- "estimating the change time of a resource is not straightforward, and
  this paper does not provide any report on the estimation accuracy" —
  our estimator is parameterized by a multiplicative lognormal error, and
  the harness reports the resulting **stale-serve rate** (the quantity
  Raza et al. left unreported);
- unpredictable resources (``no-cache``) cannot be helped at all —
  the proxy leaves them untouched.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..http.messages import Request, Response
from ..server.site import OriginSite
from ..server.static import StaticServer

__all__ = ["ExtremeCacheProxy"]


@dataclass
class ExtremeCacheProxy:
    """Header-rewriting proxy implementing the Extreme Cache idea.

    ``estimation_sigma`` is the standard deviation of the log-error of the
    change-period estimator (0 = oracle knowledge of the true period);
    ``safety_factor`` scales the estimate down before it becomes a TTL,
    trading stale risk against revalidation traffic.
    """

    site: OriginSite
    estimation_sigma: float = 1.0
    safety_factor: float = 0.5
    seed: int = 0
    max_ttl_s: float = 30 * 86400.0
    _inner: StaticServer = field(init=False)
    _estimates: dict[str, float] = field(default_factory=dict)
    #: URLs whose headers were rewritten (diagnostics)
    rewritten: int = 0

    def __post_init__(self) -> None:
        self._inner = StaticServer(self.site)

    def handle(self, request: Request, at_time: float) -> Response:
        response = self._inner.handle(request, at_time)
        if response.status != 200 or request.method != "GET":
            return response
        cc = response.cache_control
        if cc.no_store or cc.no_cache:
            # no-store must be respected; no-cache means "unpredictable",
            # which is exactly the case the estimator cannot fix (§5).
            return response
        ttl = self._estimate_ttl(request.path)
        if ttl is None:
            return response
        response.headers.set("Cache-Control", f"max-age={int(ttl)}")
        self.rewritten += 1
        return response

    def _estimate_ttl(self, url: str) -> float | None:
        cached = self._estimates.get(url)
        if cached is not None:
            return cached
        spec = self.site.resource_spec(url)
        if spec is None or spec.dynamic:
            return None
        true_period = spec.change_period_s
        if math.isinf(true_period):
            estimate = self.max_ttl_s
        else:
            rng = random.Random(f"{self.seed}|{url}")
            error = rng.lognormvariate(0.0, self.estimation_sigma)
            estimate = true_period * error * self.safety_factor
        ttl = min(max(estimate, 60.0), self.max_ttl_s)
        self._estimates[url] = ttl
        return ttl
