"""Comparison systems from the paper's related-work section.

The simple modes (no-cache, status-quo caching, server push) are built by
:func:`repro.core.modes.build_mode`; this package holds the baselines
that need machinery of their own:

- :class:`RdrProxy` — remote dependency resolution (Parcel/WatchTower style)
- :class:`ExtremeCacheProxy` — TTL-estimating header rewriter (Raza et al.)
"""

from .extreme_cache import ExtremeCacheProxy
from .rdr import DEFAULT_PROXY_CONDITIONS, RdrProxy

__all__ = ["RdrProxy", "DEFAULT_PROXY_CONDITIONS", "ExtremeCacheProxy"]
