"""Remote Dependency Resolution (RDR) baseline (paper §5).

An RDR proxy (Parcel, Nutshell, WatchTower...) runs a headless browser on
a cloud node with a low-latency path to origins.  It resolves the page's
dependency graph there — paying only datacenter RTTs — and ships the
whole bundle to the client in one transfer.

We model it faithfully by *reusing the real page loader* at the proxy:
the proxy-side load runs over a proxy->origin link (milliseconds of RTT),
then the collected bytes cross the client's access link in bulk, then the
client pays its local parse+execute costs.

What the model deliberately exposes (the paper's criticisms):

- the client's cache is useless — the proxy bundles everything, every
  visit, so revisit PLT barely improves (``rdr_load`` takes no client
  state), and
- the bulk transfer moves *all* bytes even when 95 % of them are already
  on the device.

(The TLS man-in-the-middle objection is architectural and does not show
up in PLT; see DESIGN.md.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..browser.engine import BrowserConfig, BrowserSession
from ..browser.metrics import FetchEvent, FetchSource, PageLoadResult
from ..html.parser import ResourceKind
from ..netsim.link import Link, NetworkConditions
from ..netsim.sim import Simulator
from ..server.site import OriginSite
from ..server.static import StaticServer

__all__ = ["RdrProxy", "DEFAULT_PROXY_CONDITIONS"]

#: Cloud-to-origin path: generous bandwidth, ~4 ms RTT.
DEFAULT_PROXY_CONDITIONS = NetworkConditions.of(1000, 4, label="dc-path")


@dataclass
class RdrProxy:
    """A remote-dependency-resolution proxy for one origin."""

    site: OriginSite
    proxy_conditions: NetworkConditions = DEFAULT_PROXY_CONDITIONS
    #: the proxy's own browser cost model (beefy cloud hardware)
    proxy_config: BrowserConfig = field(default_factory=lambda:
                                        BrowserConfig(
                                            use_http_cache=False,
                                            html_server_think_s=0.020))

    def load(self, sim: Simulator, client_link: Link, page_url: str,
             client_config: Optional[BrowserConfig] = None):
        """DES process: one RDR-proxied page load; returns PageLoadResult.

        Timeline: client request travels to the proxy (one client RTT +
        connection setup), the proxy resolves and fetches the entire page
        against the origin, the bundle streams down the client link, and
        the client parses/executes locally.  ``client_config=None``
        means a fresh default per call.
        """
        if client_config is None:
            client_config = BrowserConfig()
        start = sim.now
        server = StaticServer(self.site)

        # 1. Client -> proxy: connection setup + the request's half RTT.
        setup_rtts = client_config.connection_policy.setup_rtts
        if setup_rtts:
            yield sim.timeout(client_link.conditions.rtt_s * setup_rtts)
        yield from client_link.send_upstream(
            client_config.connection_policy.request_bytes)

        # 2. Proxy-side dependency resolution with the real loader.
        proxy_link = Link(sim, self.proxy_conditions)
        proxy_session = BrowserSession(self.proxy_config)
        proxy_result = yield from proxy_session.load(
            sim, proxy_link, server.handle, page_url, mode_label="rdr-proxy")

        # 3. Bulk transfer of the bundle to the client.
        bundle_bytes = sum(event.bytes_down for event in proxy_result.events)
        yield from client_link.send_downstream(bundle_bytes)

        # 4. Client-side parse and script execution still happen locally.
        html_events = [event for event in proxy_result.events
                       if event.kind is ResourceKind.DOCUMENT]
        html_bytes = html_events[0].bytes_down if html_events else 30_000
        yield sim.timeout(client_config.parse_time(html_bytes))
        exec_s = sum(
            client_config.script_model.execution_time(event.bytes_down)
            for event in proxy_result.events
            if event.kind is ResourceKind.SCRIPT)
        if exec_s:
            yield sim.timeout(exec_s)

        end = sim.now
        events = [FetchEvent(
            url=page_url, kind=ResourceKind.DOCUMENT,
            source=FetchSource.NETWORK, start_s=start, end_s=end,
            bytes_down=bundle_bytes,
            rtts_paid=1.0 + setup_rtts, blocking=True)]
        return PageLoadResult(url=page_url, mode="rdr", start_s=start,
                              onload_s=end, events=events,
                              first_render_s=end)
