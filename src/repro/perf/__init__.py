"""Micro-profiling for the server hot path (wall clock, not simulated).

Everything in :mod:`repro` measures *simulated* time; this package is the
one place that touches the *wall* clock.  It exists so the hot-path
caches in :mod:`repro.server.catalyst` have numbers behind them: cache
hit/miss counters, parses avoided, ETag-map builds, and nanosecond
latency per ``handle()`` call.  None of it feeds back into the DES —
removing every counter changes no simulated result.
"""

from .counters import PerfCounters, percentile

__all__ = ["PerfCounters", "percentile"]
