"""Hot-path counters and wall-clock handle timing.

:class:`PerfCounters` is deliberately dumb: integer counters plus a
bounded ring of per-call latencies.  The server increments counters
inline (a few attribute adds per request); analysis — percentiles,
throughput — happens off the hot path in :meth:`PerfCounters.snapshot`.

Latency samples are kept in a fixed-size ring so a long-lived server
("millions of users") never grows unbounded; once the ring wraps, old
samples are overwritten and percentiles describe the most recent window.
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Sequence

__all__ = ["PerfCounters", "percentile"]

#: default latency-ring capacity (samples)
DEFAULT_MAX_SAMPLES = 100_000


def percentile(samples: Sequence[float], q: float) -> float:
    """The q-th percentile (0..100) by linear interpolation.

    >>> percentile([1, 2, 3, 4], 50)
    2.5
    """
    if not samples:
        raise ValueError("no samples")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile out of range: {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(ordered[low])
    frac = rank - low
    return float(ordered[low] * (1.0 - frac) + ordered[high] * frac)


@dataclass
class PerfCounters:
    """Counters + latency ring for one server instance."""

    #: render cache: SW-injected body + precomputed ETag per version
    render_hits: int = 0
    render_misses: int = 0
    #: parse/ref cache: extracted ResourceRef lists per document version
    ref_hits: int = 0
    ref_misses: int = 0
    #: ETag-map cache: session-independent EtagConfig per version vector
    map_hits: int = 0
    map_builds: int = 0
    #: full DOM parses actually performed (misses only)
    html_parses: int = 0
    #: stylesheet parses actually performed (misses only)
    css_parses: int = 0
    #: ring buffer of per-``handle()`` wall latencies in nanoseconds
    max_samples: int = DEFAULT_MAX_SAMPLES
    _handle_ns: list[int] = field(default_factory=list, repr=False)
    _ring_pos: int = field(default=0, repr=False)
    #: total handles timed (may exceed ``len(samples)`` once wrapped)
    handle_count: int = 0
    #: total wall nanoseconds spent inside ``handle()``
    handle_ns_total: int = 0

    # -- recording ----------------------------------------------------------
    def record_handle_ns(self, ns: int) -> None:
        self.handle_count += 1
        self.handle_ns_total += ns
        if len(self._handle_ns) < self.max_samples:
            self._handle_ns.append(ns)
        else:
            self._handle_ns[self._ring_pos] = ns
            self._ring_pos = (self._ring_pos + 1) % self.max_samples

    @contextmanager
    def timed_handle(self) -> Iterator[None]:
        """Time one ``handle()`` call (wall clock) into the ring."""
        start = time.perf_counter_ns()
        try:
            yield
        finally:
            self.record_handle_ns(time.perf_counter_ns() - start)

    # -- analysis (off the hot path) ----------------------------------------
    @property
    def handle_samples_ns(self) -> list[int]:
        return list(self._handle_ns)

    @property
    def parses_avoided(self) -> int:
        """Document parses the ref cache absorbed."""
        return self.ref_hits

    def mean_handle_ns(self) -> float:
        if self.handle_count == 0:
            return 0.0
        return self.handle_ns_total / self.handle_count

    def handle_percentile_ns(self, q: float) -> float:
        """Percentile of the retained ring; 0.0 when no samples yet.

        Mirrors :meth:`mean_handle_ns` — a server that has not timed a
        handle yet reports zeros rather than raising mid-stats.
        """
        if not self._handle_ns:
            return 0.0
        return percentile(self._handle_ns, q)

    def snapshot(self) -> dict:
        """Machine-readable counter dump (feeds server stats + benches)."""
        out = {
            "render_hits": self.render_hits,
            "render_misses": self.render_misses,
            "ref_hits": self.ref_hits,
            "ref_misses": self.ref_misses,
            "map_hits": self.map_hits,
            "map_builds": self.map_builds,
            "html_parses": self.html_parses,
            "css_parses": self.css_parses,
            "parses_avoided": self.parses_avoided,
            "handle_count": self.handle_count,
            "handle_ns_total": self.handle_ns_total,
            "handle_ns_mean": self.mean_handle_ns(),
        }
        if self._handle_ns:
            out["handle_ns_p50"] = self.handle_percentile_ns(50)
            out["handle_ns_p90"] = self.handle_percentile_ns(90)
            out["handle_ns_p99"] = self.handle_percentile_ns(99)
        return out

    def reset(self) -> None:
        self.render_hits = self.render_misses = 0
        self.ref_hits = self.ref_misses = 0
        self.map_hits = self.map_builds = 0
        self.html_parses = self.css_parses = 0
        self.handle_count = 0
        self.handle_ns_total = 0
        self._handle_ns.clear()
        self._ring_pos = 0
