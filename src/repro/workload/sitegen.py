"""Synthetic site generation.

Builds :class:`SiteSpec` objects — complete, deterministic descriptions of
a website: every resource's URL, type, size, true change behaviour, the
cache headers its developer chose, and the dependency structure (what is
linked from HTML, what hides inside CSS, what only JS execution reveals).

The structure deliberately mirrors Figure 1 of the paper: the base HTML
links stylesheets/scripts/images; stylesheets pull images and fonts;
scripts trigger *dynamic* fetches that no static parse of the HTML can
see.  That last category is exactly what the paper's server-side DOM
traversal misses ("We leave the consideration of resources within
JavaScript code for future work"), so modelling it keeps the reproduction
honest about CacheCatalyst's coverage.

Rendering functions materialize actual bytes for HTML/CSS/JS (small, and
they must be parseable), while images/fonts/media get small stand-in
bodies with a ``declared_size`` for the network model.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Iterator, Optional

from ..html.parser import ResourceKind
from .churn import ChurnModel, ResourceChurn
from .headers_model import DeveloperModel, HeaderPolicy
from .resources import (HTML_SIZE, draw_kind, draw_resource_count, draw_size)

__all__ = ["ResourceSpec", "PageSpec", "SiteSpec", "generate_site",
           "render_resource_body", "JS_FETCH_DIRECTIVE"]

#: Directive embedded in generated JS bodies; the browser's JS model
#: "executes" scripts by scanning for these.  The server's static HTML/CSS
#: parser never sees them — by design.
JS_FETCH_DIRECTIVE = "/*@cc-fetch:"

_EXTENSIONS = {
    ResourceKind.STYLESHEET: "css",
    ResourceKind.SCRIPT: "js",
    ResourceKind.IMAGE: "png",
    ResourceKind.FONT: "woff2",
    ResourceKind.MEDIA: "mp4",
    ResourceKind.FETCH: "json",
    ResourceKind.IFRAME: "html",
    ResourceKind.OTHER: "bin",
}

_FILLER_WORDS = ("latency", "cache", "etag", "revalidate", "token", "round",
                 "trip", "header", "resource", "browser", "origin", "fetch")


@dataclass(frozen=True)
class ResourceSpec:
    """Immutable description of one subresource."""

    url: str
    kind: ResourceKind
    size_bytes: int
    policy: HeaderPolicy
    change_period_s: float
    content_seed: int
    #: "html" | "css" | "js" — what kind of parse discovers it
    discovered_via: str
    #: URL of the stylesheet/script that references it ("" if the HTML does)
    parent: str = ""
    #: URLs this resource references (CSS images/fonts, JS fetches)
    children: tuple[str, ...] = ()
    #: response is personalised per visit: always changes, never cacheable
    dynamic: bool = False
    #: sync script / stylesheet semantics (blocks parsing or render)
    blocking: bool = False
    #: exact change times (for hand-built scenario pages, e.g. Figure 1);
    #: None means the seeded Poisson process decides
    fixed_change_times: tuple[float, ...] | None = None

    def make_churn(self) -> ResourceChurn:
        """Fresh churn view (deterministic: same seed, same history)."""
        return ResourceChurn(
            period_s=self.change_period_s, seed=self.content_seed,
            change_times=(list(self.fixed_change_times)
                          if self.fixed_change_times is not None else None))


@dataclass
class PageSpec:
    """One page: the base document plus its full resource closure."""

    url: str
    html_size_bytes: int
    html_change_period_s: float
    html_content_seed: int
    #: URLs referenced directly from the HTML markup, in document order
    html_refs: tuple[str, ...] = ()
    #: every subresource in the closure, keyed by URL
    resources: dict[str, ResourceSpec] = field(default_factory=dict)
    #: exact HTML change times (None = seeded Poisson process)
    html_fixed_change_times: tuple[float, ...] | None = None

    def make_html_churn(self) -> ResourceChurn:
        return ResourceChurn(
            period_s=self.html_change_period_s,
            seed=self.html_content_seed,
            change_times=(list(self.html_fixed_change_times)
                          if self.html_fixed_change_times is not None
                          else None))

    def iter_resources(self) -> Iterator[ResourceSpec]:
        return iter(self.resources.values())

    @property
    def total_bytes(self) -> int:
        return self.html_size_bytes + sum(
            spec.size_bytes for spec in self.resources.values())

    @property
    def resource_count(self) -> int:
        return len(self.resources)


@dataclass
class SiteSpec:
    """A website: origin plus its pages (the paper uses homepages only)."""

    origin: str
    seed: int
    pages: dict[str, PageSpec] = field(default_factory=dict)

    @property
    def index_url(self) -> str:
        return "/index.html"

    @property
    def index(self) -> PageSpec:
        return self.pages[self.index_url]


@dataclass(frozen=True)
class SiteShape:
    """Structural knobs for generation (ablation surface)."""

    #: mean images/fonts hidden inside each stylesheet
    css_children_mean: float = 1.5
    #: share of scripts that trigger dynamic fetches when executed
    js_fetching_share: float = 0.45
    #: mean fetches per fetching script
    js_children_mean: float = 1.6
    #: share of JS-triggered fetches that are personalised (never cacheable)
    dynamic_fetch_share: float = 0.25
    #: share of scripts loaded async/defer (non-blocking)
    async_script_share: float = 0.45


def generate_site(origin: str, seed: int,
                  churn_model: Optional[ChurnModel] = None,
                  developer: Optional[DeveloperModel] = None,
                  shape: SiteShape = SiteShape(),
                  median_resources: int = 70,
                  extra_pages: int = 0,
                  shared_asset_fraction: float = 0.6) -> SiteSpec:
    """Generate one deterministic synthetic site.

    Same ``(origin, seed)`` -> identical site, including all future content
    changes (they are part of the seeded churn processes).

    ``extra_pages`` adds inner pages (``/page1.html``...) that *share* a
    fraction of the homepage's assets — the paper's "other pages within
    the same website" scenario, where caching pays off on the first visit
    to a page the user has never seen.
    """
    rng = random.Random(f"{seed}|{origin}")
    churn_model = churn_model or ChurnModel()
    developer = developer or DeveloperModel()
    site = SiteSpec(origin=origin, seed=seed)
    index = _generate_page(
        "/index.html", rng, churn_model, developer, shape, median_resources)
    site.pages["/index.html"] = index
    for number in range(1, extra_pages + 1):
        site.pages[f"/page{number}.html"] = _derive_inner_page(
            f"/page{number}.html", index, rng, churn_model, developer,
            shape, shared_asset_fraction)
    return site


def _derive_inner_page(url: str, index: PageSpec, rng: random.Random,
                       churn_model: ChurnModel, developer: DeveloperModel,
                       shape: SiteShape,
                       shared_fraction: float) -> PageSpec:
    """An inner page: site-wide assets plus some page-unique content.

    Shared assets reuse the homepage's exact :class:`ResourceSpec`
    objects (same URLs, same churn), so a client that loaded the
    homepage already holds them.
    """
    shared = [u for u in index.html_refs
              if rng.random() < shared_fraction]
    unique_count = max(3, int(len(index.html_refs)
                              * (1.0 - shared_fraction)))
    unique = _generate_page(url, rng, churn_model, developer, shape,
                            median_resources=max(unique_count, 8))
    page_tag = url.strip("/").split(".")[0]
    renamed: dict[str, ResourceSpec] = {}
    refs: list[str] = list(shared)
    for res_url, spec in unique.resources.items():
        if spec.discovered_via != "html":
            # keep nested children attached to their (renamed) parents
            pass
        new_url = res_url.replace("/assets/", f"/assets/{page_tag}/") \
            .replace("/api/", f"/api/{page_tag}/")
        renamed[res_url] = _with_url(spec, new_url)
    # fix up child URL references after renaming
    remap = {old: new.url for old, new in renamed.items()}
    resources: dict[str, ResourceSpec] = {}
    pending = list(shared)
    while pending:  # shared assets bring their transitive children along
        res_url = pending.pop()
        if res_url in resources:
            continue
        spec = index.resources[res_url]
        resources[res_url] = spec
        pending.extend(spec.children)
    for old_url, spec in renamed.items():
        children = tuple(remap.get(child, child) for child in spec.children)
        parent = remap.get(spec.parent, spec.parent)
        resources[spec.url] = replace(spec, children=children,
                                      parent=parent)
    refs.extend(remap[u] for u in unique.html_refs)
    return PageSpec(
        url=url,
        html_size_bytes=unique.html_size_bytes,
        html_change_period_s=unique.html_change_period_s,
        html_content_seed=unique.html_content_seed,
        html_refs=tuple(refs),
        resources=resources)


def _generate_page(url: str, rng: random.Random, churn_model: ChurnModel,
                   developer: DeveloperModel, shape: SiteShape,
                   median_resources: int) -> PageSpec:
    count = draw_resource_count(rng, median=median_resources)
    kinds = [draw_kind(rng) for _ in range(count)]

    page = PageSpec(
        url=url,
        html_size_bytes=HTML_SIZE.draw(rng),
        html_change_period_s=churn_model.draw_period(rng, None),
        html_content_seed=rng.getrandbits(48),
    )

    counters: dict[ResourceKind, int] = {}

    def new_spec(kind: ResourceKind, discovered_via: str, parent: str = "",
                 dynamic: bool = False,
                 blocking: Optional[bool] = None) -> ResourceSpec:
        index = counters.get(kind, 0)
        counters[kind] = index + 1
        ext = _EXTENSIONS[kind]
        res_url = f"/assets/{kind.value}/{kind.value}_{index:03d}.{ext}"
        if dynamic:
            res_url = f"/api/{kind.value}_{index:03d}.{ext}"
        period = (300.0 if dynamic
                  else churn_model.draw_period(rng, kind))
        policy = (HeaderPolicy(mode="no-store") if dynamic
                  else developer.draw(rng, change_period_s=period))
        if blocking is None:
            if kind is ResourceKind.STYLESHEET:
                blocking = True
            elif kind is ResourceKind.SCRIPT:
                blocking = rng.random() >= shape.async_script_share
            else:
                blocking = False
        return ResourceSpec(
            url=res_url, kind=kind,
            size_bytes=draw_size(rng, kind),
            policy=policy, change_period_s=period,
            content_seed=rng.getrandbits(48),
            discovered_via=discovered_via, parent=parent,
            dynamic=dynamic, blocking=blocking)

    html_refs: list[str] = []
    pending_css: list[ResourceSpec] = []
    pending_js: list[ResourceSpec] = []
    budget = count

    # First pass: resources referenced directly from the HTML.
    for kind in kinds:
        if budget <= 0:
            break
        spec = new_spec(kind, discovered_via="html")
        page.resources[spec.url] = spec
        html_refs.append(spec.url)
        budget -= 1
        if kind is ResourceKind.STYLESHEET:
            pending_css.append(spec)
        elif kind is ResourceKind.SCRIPT:
            pending_js.append(spec)

    # Second pass: convert part of the remaining structure into nested
    # discoveries.  These *replace* HTML-linked resources rather than adding
    # to the budget, so total request counts stay calibrated: we carve the
    # nested resources out of the already-generated image/fetch tails.
    page.resources, html_refs = _nest_children(
        page, html_refs, pending_css, pending_js, rng, shape)

    page.html_refs = tuple(html_refs)
    return page


def _nest_children(page: PageSpec, html_refs: list[str],
                   stylesheets: list[ResourceSpec],
                   scripts: list[ResourceSpec], rng: random.Random,
                   shape: SiteShape) -> tuple[dict[str, ResourceSpec],
                                              list[str]]:
    """Re-home some leaf resources under stylesheets and scripts."""
    resources = dict(page.resources)

    def _poisson(mean: float) -> int:
        # Knuth's method; means here are ~1-2 so the loop is short.
        limit = math.exp(-mean)
        k, product = 0, rng.random()
        while product > limit:
            k += 1
            product *= rng.random()
        return k

    # Stylesheets adopt images/fonts.
    adoptable = [u for u in html_refs
                 if resources[u].kind in (ResourceKind.IMAGE,
                                          ResourceKind.FONT)]
    rng.shuffle(adoptable)
    for sheet in stylesheets:
        want = min(_poisson(shape.css_children_mean), len(adoptable))
        if want <= 0:
            continue
        taken, adoptable = adoptable[:want], adoptable[want:]
        for url in taken:
            child = resources[url]
            resources[url] = _reparent(child, via="css", parent=sheet.url)
            html_refs.remove(url)
        resources[sheet.url] = _with_children(
            resources[sheet.url], tuple(taken))

    # Scripts adopt fetch/json resources (and occasionally another script,
    # giving the b.js -> c.js chains of Figure 1).
    adoptable = [u for u in html_refs
                 if resources[u].kind is ResourceKind.FETCH]
    rng.shuffle(adoptable)
    fetching_scripts = [s for s in scripts
                        if rng.random() < shape.js_fetching_share]
    for script in fetching_scripts:
        want = min(_poisson(shape.js_children_mean), len(adoptable))
        if want <= 0:
            continue
        taken, adoptable = adoptable[:want], adoptable[want:]
        children = []
        for url in taken:
            html_refs.remove(url)
            child = resources[url]
            dynamic = rng.random() < shape.dynamic_fetch_share
            child = _reparent(child, via="js", parent=script.url,
                              dynamic=dynamic)
            if dynamic:
                del resources[url]
                url = "/api" + url[url.rfind("/"):]
                child = _with_url(child, url)
            resources[url] = child
            children.append(url)
        resources[script.url] = _with_children(
            resources[script.url], tuple(children))
    return resources, html_refs


def _reparent(spec: ResourceSpec, via: str, parent: str,
              dynamic: bool = False) -> ResourceSpec:
    policy = HeaderPolicy(mode="no-store") if dynamic else spec.policy
    period = 300.0 if dynamic else spec.change_period_s
    return replace(spec, discovered_via=via, parent=parent, dynamic=dynamic,
                   policy=policy, change_period_s=period)


def _with_children(spec: ResourceSpec,
                   children: tuple[str, ...]) -> ResourceSpec:
    return replace(spec, children=spec.children + children)


def _with_url(spec: ResourceSpec, url: str) -> ResourceSpec:
    return replace(spec, url=url)


def freeze_site(site: SiteSpec) -> SiteSpec:
    """A copy of ``site`` whose content never changes ("cloned" semantics).

    This is the paper's evaluation methodology: homepages were *cloned*
    and served from a local Caddy, so revisits — however delayed — saw
    byte-identical content; only cache headers and the advanced clock
    decided behaviour.  Dynamic (personalised) resources stay dynamic;
    a clone's API endpoints still answer fresh bytes per request.

    Header policies are untouched: they were drawn against the original
    change behaviour, exactly like a clone preserves origin headers.
    """
    frozen_pages: dict[str, PageSpec] = {}
    for url, page in site.pages.items():
        frozen_resources = {
            res_url: (spec if spec.dynamic
                      else replace(spec, fixed_change_times=()))
            for res_url, spec in page.resources.items()}
        frozen_pages[url] = replace(page, resources=frozen_resources,
                                    html_fixed_change_times=())
    return replace(site, pages=frozen_pages)


# ---------------------------------------------------------------------------
# Content rendering
# ---------------------------------------------------------------------------

@lru_cache(maxsize=1024)
def _filler(seed: int, nbytes: int) -> str:
    """Deterministic pseudo-text of roughly ``nbytes`` characters.

    This is the single hottest function of an unmemoized grid run: every
    CSS/JS response regenerates its filler word-by-word.  Content is a
    pure function of ``(seed, nbytes)``, so the cache is byte-exact; the
    loop body inlines ``random.Random.choice`` (same underlying
    ``_randbelow`` draws, so the text is unchanged) to halve the cost of
    the cold generation that remains.
    """
    randbelow = random.Random(seed)._randbelow
    words = _FILLER_WORDS
    nwords = len(words)
    chosen = []
    append = chosen.append
    size = 0
    while size < nbytes:
        word = words[randbelow(nwords)]
        append(word)
        size += len(word) + 1
    return " ".join(chosen)[:nbytes]


def render_html(page: PageSpec, version: int) -> str:
    """Materialize the base HTML for a content version.

    The link structure is version-independent (the template is stable);
    only the copy rotates — so a revisit sees the same resource set, which
    is what lets any caching scheme help at all.
    """
    head_parts = ["<meta charset=\"utf-8\">",
                  f"<title>synthetic page v{version}</title>"]
    body_parts = [f"<h1>edition {version}</h1>"]
    for url in page.html_refs:
        spec = page.resources[url]
        if spec.kind is ResourceKind.STYLESHEET:
            head_parts.append(f'<link rel="stylesheet" href="{url}">')
        elif spec.kind is ResourceKind.SCRIPT:
            attr = "" if spec.blocking else " defer"
            head_parts.append(f'<script src="{url}"{attr}></script>')
        elif spec.kind is ResourceKind.IMAGE:
            body_parts.append(f'<img src="{url}" alt="">')
        elif spec.kind is ResourceKind.MEDIA:
            body_parts.append(f'<video src="{url}"></video>')
        elif spec.kind is ResourceKind.IFRAME:
            body_parts.append(f'<iframe src="{url}"></iframe>')
        elif spec.kind is ResourceKind.FETCH:
            # XHR endpoints linked statically model <link rel=preload as=fetch>
            head_parts.append(f'<link rel="preload" as="fetch" href="{url}">')
        else:
            body_parts.append(f'<object data="{url}"></object>')
    skeleton = ("<!DOCTYPE html><html><head>" + "".join(head_parts)
                + "</head><body>" + "".join(body_parts))
    pad = max(0, page.html_size_bytes - len(skeleton) - 20)
    filler = _filler(page.html_content_seed ^ version, pad)
    return skeleton + f"<p>{filler}</p></body></html>"


@lru_cache(maxsize=1024)
def render_css(spec: ResourceSpec, version: int) -> str:
    """Materialize a stylesheet; its children appear as url() tokens.

    Memoized: a spec is frozen and content is deterministic per version,
    so re-rendering for every request of every visit is pure waste.
    """
    rules = [f"/* v{version} */"]
    for index, child in enumerate(spec.children):
        rules.append(f".bg{index} {{ background: url({child}); }}")
    skeleton = "\n".join(rules)
    pad = max(0, spec.size_bytes - len(skeleton) - 30)
    return skeleton + f"\n/* {_filler(spec.content_seed ^ version, pad)} */"


@lru_cache(maxsize=1024)
def render_js(spec: ResourceSpec, version: int) -> str:
    """Materialize a script; dynamic fetches hide in directive comments.

    Memoized for the same reason as :func:`render_css`.
    """
    lines = [f"// build {version}"]
    for child in spec.children:
        lines.append(f"{JS_FETCH_DIRECTIVE}{child}*/")
    skeleton = "\n".join(lines)
    pad = max(0, spec.size_bytes - len(skeleton) - 30)
    return skeleton + f"\n/* {_filler(spec.content_seed ^ version, pad)} */"


@lru_cache(maxsize=1024)
def _encoded_asset(spec: ResourceSpec, version: int) -> tuple[bytes, int]:
    """Encoded CSS/JS body plus wire size, cached alongside the text."""
    text = (render_css(spec, version)
            if spec.kind is ResourceKind.STYLESHEET
            else render_js(spec, version))
    body = text.encode()
    return body, max(len(body), spec.size_bytes)


def render_resource_body(spec: ResourceSpec, version: int,
                         materialize_fully: bool = False) -> tuple[bytes, int]:
    """Bytes plus declared wire size for any resource.

    HTML-free resources return a small stand-in body whose content encodes
    (url, version) so ETag hashing behaves exactly as if the full bytes
    existed.  ``materialize_fully`` pads to the real size (used by the
    real-socket integration path, where actual bytes must flow).
    """
    if spec.kind is ResourceKind.STYLESHEET:
        return _encoded_asset(spec, version)
    if spec.kind is ResourceKind.SCRIPT:
        return _encoded_asset(spec, version)
    marker = f"{spec.url}|v{version}|seed{spec.content_seed}".encode()
    if materialize_fully:
        body = (marker * (spec.size_bytes // len(marker) + 1))[
            :max(spec.size_bytes, len(marker))]
        return body, len(body)
    return marker, spec.size_bytes
