"""Resource type and size distributions for synthetic pages.

Figures follow the httparchive "State of the Web" shape the paper cites
(§2.2: "Web pages, while containing hundreds of resources, have a total
size of about 2.5MB ... resources are around a few kilobytes in size"):

- median page weight ≈ 2.5 MB across ≈ 70 requests,
- images dominate bytes, scripts dominate request count after images,
- individual resources are small (median ≈ 10-30 KB) with a heavy tail.

Sizes are drawn from per-type lognormal distributions whose medians and
spreads reproduce those aggregates; page request counts come from a
lognormal around the median with realistic dispersion across the corpus.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..html.parser import ResourceKind

__all__ = ["SizeModel", "TypeMix", "DEFAULT_TYPE_MIX", "DEFAULT_SIZES",
           "draw_resource_count", "draw_size", "draw_kind"]


@dataclass(frozen=True)
class SizeModel:
    """Lognormal size distribution for one resource type (bytes)."""

    median_bytes: float
    sigma: float
    min_bytes: int = 120
    max_bytes: int = 4_000_000

    def draw(self, rng: random.Random) -> int:
        mu = math.log(self.median_bytes)
        value = rng.lognormvariate(mu, self.sigma)
        return int(min(max(value, self.min_bytes), self.max_bytes))


#: Per-type size models (medians from httparchive 2024 state-of-the-web
#: per-request figures; sigmas give the usual order-of-magnitude spread).
DEFAULT_SIZES: dict[ResourceKind, SizeModel] = {
    ResourceKind.STYLESHEET: SizeModel(median_bytes=12_000, sigma=1.0),
    ResourceKind.SCRIPT: SizeModel(median_bytes=22_000, sigma=1.1),
    ResourceKind.IMAGE: SizeModel(median_bytes=18_000, sigma=1.3),
    ResourceKind.FONT: SizeModel(median_bytes=40_000, sigma=0.7),
    ResourceKind.MEDIA: SizeModel(median_bytes=120_000, sigma=1.2),
    ResourceKind.FETCH: SizeModel(median_bytes=3_000, sigma=1.0),
    ResourceKind.IFRAME: SizeModel(median_bytes=25_000, sigma=0.9),
    ResourceKind.OTHER: SizeModel(median_bytes=8_000, sigma=1.0),
}

#: Base HTML size model (document itself).
HTML_SIZE = SizeModel(median_bytes=30_000, sigma=0.8, max_bytes=400_000)


@dataclass(frozen=True)
class TypeMix:
    """Relative frequency of resource types on a page (request share)."""

    weights: tuple[tuple[ResourceKind, float], ...]

    def draw(self, rng: random.Random) -> ResourceKind:
        kinds = [kind for kind, _ in self.weights]
        weights = [weight for _, weight in self.weights]
        return rng.choices(kinds, weights=weights, k=1)[0]

    def share(self, kind: ResourceKind) -> float:
        total = sum(weight for _, weight in self.weights)
        for k, weight in self.weights:
            if k == kind:
                return weight / total
        return 0.0


#: Request-count mix per httparchive: images ≈ 38 %, scripts ≈ 30 %,
#: css ≈ 10 %, fonts ≈ 5 %, xhr/other make up the rest.
DEFAULT_TYPE_MIX = TypeMix(weights=(
    (ResourceKind.IMAGE, 38.0),
    (ResourceKind.SCRIPT, 30.0),
    (ResourceKind.STYLESHEET, 10.0),
    (ResourceKind.FONT, 5.0),
    (ResourceKind.FETCH, 12.0),
    (ResourceKind.MEDIA, 2.0),
    (ResourceKind.OTHER, 3.0),
))

#: Median requests per page; the paper's corpus is homepage-only, which
#: trends a little above the all-pages median.
MEDIAN_RESOURCES_PER_PAGE = 70
RESOURCE_COUNT_SIGMA = 0.45
MIN_RESOURCES_PER_PAGE = 8
MAX_RESOURCES_PER_PAGE = 400


def draw_resource_count(rng: random.Random,
                        median: int = MEDIAN_RESOURCES_PER_PAGE) -> int:
    """Number of subresources for one page."""
    value = rng.lognormvariate(math.log(median), RESOURCE_COUNT_SIGMA)
    return int(min(max(value, MIN_RESOURCES_PER_PAGE),
                   MAX_RESOURCES_PER_PAGE))


def draw_kind(rng: random.Random,
              mix: TypeMix = DEFAULT_TYPE_MIX) -> ResourceKind:
    return mix.draw(rng)


def draw_size(rng: random.Random, kind: ResourceKind,
              sizes: dict[ResourceKind, SizeModel] | None = None) -> int:
    model = (sizes or DEFAULT_SIZES).get(kind,
                                         DEFAULT_SIZES[ResourceKind.OTHER])
    return model.draw(rng)
