"""Revisit-interval model: how long until users come back.

The paper samples five fixed delays; real revisit intervals are heavy-
tailed — most returns happen within the hour (continued browsing), a
long tail stretches over weeks.  This model draws intervals from a
mixture of lognormals (session-return, same-day, and long-tail
components) so experiments can report the *user-weighted* expected
benefit instead of a uniform average over arbitrary delays.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence

from ..netsim.clock import DAY, HOUR, MINUTE

__all__ = ["RevisitModel", "DEFAULT_REVISIT_MODEL"]


@dataclass(frozen=True)
class _Component:
    weight: float
    median_s: float
    sigma: float


@dataclass(frozen=True)
class RevisitModel:
    """Mixture-of-lognormals revisit intervals."""

    components: tuple[_Component, ...]
    #: clamp: below this a "revisit" is really the same page view
    min_delay_s: float = 30.0
    #: clamp: beyond this the cache was likely evicted anyway
    max_delay_s: float = 30 * DAY

    def draw(self, rng: random.Random) -> float:
        """One revisit interval in seconds."""
        roll = rng.random()
        acc = 0.0
        component = self.components[-1]
        for candidate in self.components:
            acc += candidate.weight
            if roll < acc:
                component = candidate
                break
        value = rng.lognormvariate(math.log(component.median_s),
                                   component.sigma)
        return min(max(value, self.min_delay_s), self.max_delay_s)

    def draw_many(self, rng: random.Random, n: int) -> list[float]:
        return [self.draw(rng) for _ in range(n)]

    def cdf(self, x: float) -> float:
        """Exact CDF of the *clamped* interval distribution.

        :meth:`draw` clamps into ``[min_delay_s, max_delay_s]``, which
        moves the raw tail mass onto the clamp points: below the floor
        the CDF is 0, at the floor it jumps to the raw mixture CDF
        there, and at the ceiling it is exactly 1.  The interior is the
        weight-normalized sum of lognormal CDFs, evaluated closed-form
        via :func:`math.erf` — this is what lets the population engine
        bin revisit delays analytically instead of by Monte Carlo.
        """
        if x < self.min_delay_s:
            return 0.0
        if x >= self.max_delay_s:
            return 1.0
        log_x = math.log(x)
        acc = 0.0
        total_weight = 0.0
        for component in self.components:
            z = (log_x - math.log(component.median_s)) \
                / (component.sigma * math.sqrt(2.0))
            acc += component.weight * 0.5 * (1.0 + math.erf(z))
            total_weight += component.weight
        return acc / total_weight

    def quantiles(self, qs: Sequence[float], seed: int = 0,
                  samples: int = 20_000) -> list[float]:
        """Empirical quantiles (deterministic given ``seed``)."""
        rng = random.Random(seed)
        values = sorted(self.draw(rng) for _ in range(samples))
        out = []
        for q in qs:
            index = min(int(q * samples), samples - 1)
            out.append(values[index])
        return out


#: Calibrated flavour: ~45 % of revisits within the browsing session
#: (minutes), ~35 % same day, ~20 % long tail — the shape web-revisit
#: studies consistently report.
DEFAULT_REVISIT_MODEL = RevisitModel(components=(
    _Component(weight=0.45, median_s=8 * MINUTE, sigma=1.0),
    _Component(weight=0.35, median_s=9 * HOUR, sigma=1.0),
    _Component(weight=0.20, median_s=5 * DAY, sigma=0.9),
))
