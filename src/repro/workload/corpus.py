"""The synthetic "top-100 websites" corpus.

The paper clones the homepages of the 100 most-visited sites; we generate
100 synthetic homepages from seeded distributions instead (see DESIGN.md
for why this substitution preserves the evaluated behaviour).  A small
amount of per-site diversity mimics the real ranking's heterogeneity:
some sites are media-heavy, some script-heavy, some lean.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Iterator, Optional

from .churn import ChurnModel
from .headers_model import DeveloperModel
from .sitegen import SiteShape, SiteSpec, freeze_site, generate_site

__all__ = ["Corpus", "make_corpus", "CORPUS_SIZE"]

CORPUS_SIZE = 100

#: Site archetypes roughly matching top-list categories and their shares.
_ARCHETYPES: tuple[tuple[str, float, dict], ...] = (
    # (name, share, overrides for SiteShape/median resources).  Medians
    # run above the all-web median: the corpus mimics *top-100 homepages*,
    # which are markedly heavier than the average page.
    ("portal", 0.30, {"median_resources": 110}),
    ("media", 0.20, {"median_resources": 150,
                     "shape": SiteShape(js_fetching_share=0.6,
                                        dynamic_fetch_share=0.35)}),
    ("commerce", 0.20, {"median_resources": 100,
                        "shape": SiteShape(css_children_mean=2.2)}),
    ("docs", 0.15, {"median_resources": 60,
                    "shape": SiteShape(js_fetching_share=0.2,
                                       async_script_share=0.6)}),
    ("app", 0.15, {"median_resources": 75,
                   "shape": SiteShape(js_fetching_share=0.7,
                                      dynamic_fetch_share=0.4)}),
)


@dataclass
class Corpus:
    """A generated collection of sites plus the models that shaped it."""

    sites: list[SiteSpec]
    seed: int
    developer: DeveloperModel
    churn: ChurnModel

    def __iter__(self) -> Iterator[SiteSpec]:
        return iter(self.sites)

    def __len__(self) -> int:
        return len(self.sites)

    def __getitem__(self, index: int) -> SiteSpec:
        return self.sites[index]

    @property
    def total_resources(self) -> int:
        return sum(site.index.resource_count for site in self.sites)

    def sample(self, count: int, seed: int = 0) -> "Corpus":
        """A reproducible subset (cheaper experiment runs)."""
        rng = random.Random(seed)
        subset = rng.sample(self.sites, min(count, len(self.sites)))
        return replace(self, sites=subset)

    def frozen(self) -> "Corpus":
        """Clone semantics: content never changes (paper's methodology)."""
        return replace(self,
                       sites=[freeze_site(site) for site in self.sites])


def make_corpus(size: int = CORPUS_SIZE, seed: int = 2024,
                developer: Optional[DeveloperModel] = None,
                churn: Optional[ChurnModel] = None) -> Corpus:
    """Generate the evaluation corpus.

    Deterministic in ``(size, seed)`` and the supplied models.
    """
    developer = developer or DeveloperModel()
    churn = churn or ChurnModel()
    rng = random.Random(seed)
    names = [name for name, _, _ in _ARCHETYPES]
    weights = [share for _, share, _ in _ARCHETYPES]
    overrides = {name: params for name, _, params in _ARCHETYPES}

    sites: list[SiteSpec] = []
    for rank in range(size):
        archetype = rng.choices(names, weights=weights, k=1)[0]
        params = overrides[archetype]
        site = generate_site(
            origin=f"https://site{rank:03d}-{archetype}.example",
            seed=rng.getrandbits(32),
            churn_model=churn,
            developer=developer,
            shape=params.get("shape", SiteShape()),
            median_resources=params.get("median_resources", 70),
        )
        sites.append(site)
    return Corpus(sites=sites, seed=seed, developer=developer, churn=churn)
