"""Resource change-over-time model.

Each resource gets a characteristic *change period* τ; content changes are
a Poisson process of rate 1/τ, so the probability a resource has changed
after a revisit delay Δ is ``1 - exp(-Δ/τ)``.  The number of changes by
absolute time t is deterministic given the seed (we precompute change
times lazily from a seeded RNG), so two visits at the same simulated times
always observe identical versions — a requirement for reproducible
experiments.

Per-type τ distributions are set so the corpus reproduces the measurement
studies the paper leans on (checked by ``experiments.motivation``):

- Liu et al.: 40 % of resources carry a TTL below one day, yet 86 % of
  those do not change within a day,
- Ramanujam et al.: ≈ 47 % of resources expire in cache while unchanged.

The flavor: markup and JSON/XHR churn in hours-to-days, scripts and
stylesheets in days-to-weeks, images and fonts in weeks-to-months.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_right
from dataclasses import dataclass

from ..html.parser import ResourceKind

__all__ = ["ChurnModel", "ResourceChurn", "DEFAULT_CHANGE_PERIODS"]


@dataclass(frozen=True)
class PeriodModel:
    """Lognormal distribution of change periods τ for one type (seconds)."""

    median_s: float
    sigma: float
    #: probability the resource effectively never changes (version pinned
    #: assets, hashed bundle names, logos...)
    immutable_share: float = 0.0

    def draw(self, rng: random.Random) -> float:
        if self.immutable_share and rng.random() < self.immutable_share:
            return math.inf
        return rng.lognormvariate(math.log(self.median_s), self.sigma)


_DAY = 86400.0
_WEEK = 7 * _DAY

DEFAULT_CHANGE_PERIODS: dict[ResourceKind, PeriodModel] = {
    # XHR/API payloads are the fastest movers.
    ResourceKind.FETCH: PeriodModel(median_s=6 * 3600.0, sigma=1.4),
    ResourceKind.SCRIPT: PeriodModel(median_s=2 * _WEEK, sigma=1.3,
                                     immutable_share=0.25),
    ResourceKind.STYLESHEET: PeriodModel(median_s=2 * _WEEK, sigma=1.2,
                                         immutable_share=0.25),
    ResourceKind.IMAGE: PeriodModel(median_s=8 * _WEEK, sigma=1.5,
                                    immutable_share=0.35),
    ResourceKind.FONT: PeriodModel(median_s=26 * _WEEK, sigma=1.0,
                                   immutable_share=0.60),
    ResourceKind.MEDIA: PeriodModel(median_s=4 * _WEEK, sigma=1.3,
                                    immutable_share=0.20),
    ResourceKind.IFRAME: PeriodModel(median_s=_DAY, sigma=1.2),
    ResourceKind.OTHER: PeriodModel(median_s=4 * _WEEK, sigma=1.3,
                                    immutable_share=0.20),
}

#: Base HTML documents churn fast (news headlines, feeds, rotating promos).
HTML_PERIOD = PeriodModel(median_s=12 * 3600.0, sigma=1.2)


class ResourceChurn:
    """Deterministic change history for one resource.

    Change times are drawn lazily from an exponential inter-arrival
    process; :meth:`version_at` is monotone in ``t`` and pure.
    """

    __slots__ = ("period_s", "_rng", "_change_times", "_fixed")

    def __init__(self, period_s: float, seed: int,
                 change_times: list[float] | None = None):
        if period_s <= 0:
            raise ValueError("change period must be positive")
        self.period_s = period_s
        self._rng = random.Random(seed)
        self._fixed = change_times is not None
        self._change_times: list[float] = (
            sorted(change_times) if change_times else [])

    def _extend_to(self, t: float) -> None:
        if math.isinf(self.period_s) or self._fixed:
            return
        last = self._change_times[-1] if self._change_times else 0.0
        while last <= t:
            last += self._rng.expovariate(1.0 / self.period_s)
            self._change_times.append(last)

    def version_at(self, t: float) -> int:
        """Number of content changes in (0, t] — the version counter.

        >>> churn = ResourceChurn(period_s=math.inf, seed=1)
        >>> churn.version_at(1e9)
        0
        """
        if t < 0:
            raise ValueError("negative time")
        if math.isinf(self.period_s) and not self._fixed:
            return 0
        self._extend_to(t)
        return bisect_right(self._change_times, t)

    def last_change_at(self, t: float) -> float:
        """Time of the most recent change at or before ``t`` (0.0 if none).

        Feeds the ``Last-Modified`` header, which in turn drives heuristic
        freshness for responses without explicit lifetimes.
        """
        if math.isinf(self.period_s) and not self._fixed:
            return 0.0
        self._extend_to(t)
        index = bisect_right(self._change_times, t)
        if index == 0:
            return 0.0
        return self._change_times[index - 1]

    def changed_between(self, t0: float, t1: float) -> bool:
        """Whether content changed in (t0, t1]."""
        if t1 < t0:
            t0, t1 = t1, t0
        return self.version_at(t1) != self.version_at(t0)

    def change_probability(self, delta_s: float) -> float:
        """Closed-form P(changed within delta) for this resource's τ."""
        if math.isinf(self.period_s):
            return 0.0
        return 1.0 - math.exp(-delta_s / self.period_s)


class ChurnModel:
    """Factory assigning change periods to resources by type."""

    def __init__(self, periods: dict[ResourceKind, PeriodModel] | None = None,
                 html_period: PeriodModel = HTML_PERIOD):
        self.periods = dict(DEFAULT_CHANGE_PERIODS)
        if periods:
            self.periods.update(periods)
        self.html_period = html_period

    def draw_period(self, rng: random.Random,
                    kind: ResourceKind | None) -> float:
        """Draw a change period; ``kind=None`` means the base HTML."""
        if kind is None:
            return self.html_period.draw(rng)
        model = self.periods.get(kind, self.periods[ResourceKind.OTHER])
        return model.draw(rng)

    def churn_for(self, rng: random.Random, kind: ResourceKind | None,
                  seed: int) -> ResourceChurn:
        return ResourceChurn(period_s=self.draw_period(rng, kind), seed=seed)
