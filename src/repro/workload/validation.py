"""Corpus composition validation against published web statistics.

The synthetic corpus substitutes for real top-100 homepages, so its
aggregate shape has to be defensible.  This module measures the
distributions that matter for PLT work and compares them against the
httparchive-style targets the generator was built from:

- page weight (total bytes) and request count medians,
- request share per resource type,
- share of bytes in images (the weight-dominant type).
"""

from __future__ import annotations

from dataclasses import dataclass

from .corpus import Corpus, make_corpus

__all__ = ["CorpusShape", "measure_corpus_shape"]


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


@dataclass(frozen=True)
class CorpusShape:
    """Aggregate composition of a corpus."""

    sites: int
    median_page_bytes: float
    median_resource_count: float
    #: request share per resource kind (fractions summing to ~1)
    request_share: dict[str, float]
    #: byte share per resource kind
    byte_share: dict[str, float]

    def format(self) -> str:
        lines = [
            f"sites: {self.sites}",
            f"median page weight: {self.median_page_bytes / 1e6:.2f} MB "
            "(httparchive ~2.5 MB)",
            f"median requests/page: {self.median_resource_count:.0f} "
            "(top-site homepages ~70-150)",
            "request share by type:",
        ]
        for kind, share in sorted(self.request_share.items(),
                                  key=lambda kv: -kv[1]):
            lines.append(f"  {kind:<11} {share:6.1%}  "
                         f"(bytes {self.byte_share.get(kind, 0):6.1%})")
        return "\n".join(lines)


def measure_corpus_shape(corpus: Corpus | None = None) -> CorpusShape:
    """Measure the composition of ``corpus`` (default: the full corpus)."""
    if corpus is None:
        corpus = make_corpus()
    weights: list[float] = []
    counts: list[float] = []
    requests_by_kind: dict[str, int] = {}
    bytes_by_kind: dict[str, int] = {}
    total_requests = 0
    total_bytes = 0
    for site in corpus:
        page = site.index
        weights.append(float(page.total_bytes))
        counts.append(float(page.resource_count))
        for spec in page.iter_resources():
            kind = spec.kind.value
            requests_by_kind[kind] = requests_by_kind.get(kind, 0) + 1
            bytes_by_kind[kind] = bytes_by_kind.get(kind, 0) \
                + spec.size_bytes
            total_requests += 1
            total_bytes += spec.size_bytes
    return CorpusShape(
        sites=len(corpus),
        median_page_bytes=_median(weights),
        median_resource_count=_median(counts),
        request_share={kind: count / total_requests
                       for kind, count in requests_by_kind.items()},
        byte_share={kind: size / total_bytes
                    for kind, size in bytes_by_kind.items()},
    )
