"""Seeded population workloads: who visits what, when, on which network.

The paper's evidence is one user on a delay grid; a deployment verdict
needs the *fleet* view — a population of users with Zipf-skewed site
popularity, heavy-tailed revisit delays, and Poisson session arrivals.
This module compiles a :class:`PopulationSpec` into a deterministic
visit schedule, following the icarus stationary-workload design: a
``n_warmup`` prefix populates caches, the ``n_measured`` suffix is what
gets priced.

Determinism is the load-bearing property.  Every user owns an
independent RNG stream derived from ``(spec.seed, user_id)`` by a
SplitMix64-style mixer, so the schedule for user ``u`` is a pure
function of the spec — any sharding of the user-id space (serial, or
split across a worker pool) reassembles to the byte-identical stream.

Two consumers sit on top (``experiments/fleet.py``):

* the **analytic backend** never materializes the schedule at all — it
  prices expected visits from the same primitives this module exposes
  (:func:`zipf_weights` for the popularity pmf, :func:`delay_mixture`
  for the exact revisit-delay bin masses, :func:`cold_fraction` for the
  closed-form first-visit share under Poisson thinning);
* the **sampled DES backend** draws a deterministic subset of real
  schedule entries via :func:`sample_visits` and replays them through
  the simulator.

Modeling note: a warm visit's ``delay_s`` (the cache age the visit
sees) is drawn from the cohort's :class:`~repro.workload.revisits.
RevisitModel` — the calibrated inter-visit distribution — rather than
recomputed from the gap to the previous scheduled visit.  Arrival
times drive the warmup/measured phase split and fleet arrival rates;
delays drive cache state.  Keeping the delay marginal exactly equal to
the mixture is what makes the analytic bin weights match the sampled
schedule by construction instead of approximately.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_right
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Iterator, Optional

from ..netsim.clock import DAY
from ..netsim.link import NetworkConditions
from .revisits import DEFAULT_REVISIT_MODEL, RevisitModel

__all__ = ["CohortSpec", "PopulationSpec", "Visit", "DelayMixture",
           "zipf_weights", "user_stream", "user_visits", "iter_visits",
           "sample_visits", "delay_mixture", "cold_fraction"]

_MASK64 = (1 << 64) - 1


@dataclass(frozen=True)
class CohortSpec:
    """One slice of the population: its share, network, revisit habits."""

    name: str
    weight: float
    conditions: NetworkConditions
    revisit_model: RevisitModel = DEFAULT_REVISIT_MODEL


@dataclass(frozen=True)
class PopulationSpec:
    """A seeded fleet workload, compiled lazily into a visit schedule.

    ``n_warmup`` visits populate per-user caches, ``n_measured`` are the
    priced suffix (icarus's stationary-workload shape); both count the
    whole population's visits, spread over ``n_users`` Poisson streams
    at ``rate_per_user_day`` — which fixes the schedule horizon.
    """

    n_users: int
    n_sites: int
    cohorts: tuple[CohortSpec, ...]
    n_warmup: int
    n_measured: int
    alpha: float = 0.8
    rate_per_user_day: float = 12.0
    seed: int = 2024

    def __post_init__(self) -> None:
        if self.n_users < 1:
            raise ValueError(f"n_users must be >= 1: {self.n_users}")
        if self.n_sites < 1:
            raise ValueError(f"n_sites must be >= 1: {self.n_sites}")
        if not self.cohorts:
            raise ValueError("population needs at least one cohort")
        if any(c.weight <= 0 for c in self.cohorts):
            raise ValueError("cohort weights must be positive")
        if self.alpha < 0:
            raise ValueError(f"alpha must be >= 0: {self.alpha}")
        if self.n_measured < 1:
            raise ValueError(f"n_measured must be >= 1: {self.n_measured}")
        if self.n_warmup < 0:
            raise ValueError(f"n_warmup must be >= 0: {self.n_warmup}")
        if self.rate_per_user_day <= 0:
            raise ValueError("rate_per_user_day must be positive: "
                             f"{self.rate_per_user_day}")

    # -- derived schedule geometry ------------------------------------------
    @property
    def n_visits(self) -> int:
        return self.n_warmup + self.n_measured

    @property
    def visits_per_user(self) -> float:
        """Poisson mean of one user's visit count over the horizon."""
        return self.n_visits / self.n_users

    @property
    def horizon_s(self) -> float:
        """Schedule length implied by the per-user arrival rate."""
        return self.visits_per_user * DAY / self.rate_per_user_day

    @property
    def warmup_share(self) -> float:
        return self.n_warmup / self.n_visits

    @property
    def warmup_s(self) -> float:
        return self.horizon_s * self.warmup_share

    @property
    def measured_window_s(self) -> float:
        return self.horizon_s - self.warmup_s

    @property
    def cohort_shares(self) -> tuple[float, ...]:
        total = sum(c.weight for c in self.cohorts)
        return tuple(c.weight / total for c in self.cohorts)


@dataclass(frozen=True)
class Visit:
    """One scheduled page visit."""

    __slots__ = ("user", "cohort", "site", "at_s", "delay_s", "measured")

    user: int
    #: index into ``spec.cohorts``
    cohort: int
    #: corpus popularity rank (0 = most popular)
    site: int
    #: absolute schedule time
    at_s: float
    #: cache age this visit sees; ``None`` on the user's first visit to
    #: the site (a cold load)
    delay_s: Optional[float]
    #: True once ``at_s`` is past the warmup window
    measured: bool


@lru_cache(maxsize=64)
def zipf_weights(n_sites: int, alpha: float) -> tuple[float, ...]:
    """Normalized Zipf(α) pmf over ``n_sites`` popularity ranks.

    ``alpha=0`` degenerates to uniform, matching the single-user
    experiments that sample the corpus evenly.
    """
    if n_sites < 1:
        raise ValueError(f"n_sites must be >= 1: {n_sites}")
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0: {alpha}")
    raw = [rank ** -alpha for rank in range(1, n_sites + 1)]
    total = sum(raw)
    return tuple(w / total for w in raw)


@lru_cache(maxsize=64)
def _zipf_cdf(n_sites: int, alpha: float) -> tuple[float, ...]:
    acc = 0.0
    out = []
    for weight in zipf_weights(n_sites, alpha):
        acc += weight
        out.append(acc)
    out[-1] = 1.0  # guard against float round-off at the tail
    return tuple(out)


def user_stream(spec: PopulationSpec, user_id: int) -> random.Random:
    """Independent deterministic RNG stream for one user.

    SplitMix64-finalized mixing of ``(seed, user_id)``: streams are
    decorrelated without any shared sequential state, which is what
    makes per-user schedules shard-order independent.
    """
    x = (spec.seed * 0x9E3779B97F4A7C15
         + (user_id + 1) * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return random.Random(x)


def _poisson(rng: random.Random, mu: float) -> int:
    """Poisson draw; Knuth's product method, chunked so ``exp(-mu)``
    never underflows for deep per-user schedules (Poisson additivity
    makes the chunked sum exact in distribution)."""
    count = 0
    while mu > 500.0:
        count += _poisson(rng, 250.0)
        mu -= 250.0
    threshold = math.exp(-mu)
    product = rng.random()
    while product >= threshold:
        count += 1
        product *= rng.random()
    return count


def user_visits(spec: PopulationSpec, user_id: int) -> list[Visit]:
    """One user's full visit schedule, chronological.

    A pure function of ``(spec, user_id)`` — the draw order (cohort
    roll, visit count, arrival times, then per-visit site and delay) is
    part of the schedule contract and pinned by property tests.
    """
    rng = user_stream(spec, user_id)
    shares = spec.cohort_shares
    roll = rng.random()
    acc = 0.0
    cohort = len(shares) - 1
    for index, share in enumerate(shares):
        acc += share
        if roll < acc:
            cohort = index
            break
    count = _poisson(rng, spec.visits_per_user)
    horizon = spec.horizon_s
    # Given the count, Poisson arrival times are i.i.d. uniform order
    # statistics over the horizon.
    times = sorted(rng.random() * horizon for _ in range(count))
    site_cdf = _zipf_cdf(spec.n_sites, spec.alpha)
    model = spec.cohorts[cohort].revisit_model
    warmup_s = spec.warmup_s
    seen: set[int] = set()
    visits = []
    for at_s in times:
        site = bisect_right(site_cdf, rng.random())
        if site >= spec.n_sites:
            site = spec.n_sites - 1
        if site in seen:
            delay_s: Optional[float] = model.draw(rng)
        else:
            delay_s = None
            seen.add(site)
        visits.append(Visit(user=user_id, cohort=cohort, site=site,
                            at_s=at_s, delay_s=delay_s,
                            measured=at_s >= warmup_s))
    return visits


def iter_visits(spec: PopulationSpec,
                users: Optional[Iterable[int]] = None) -> Iterator[Visit]:
    """All visits, user-major and chronological within each user.

    Because each user's schedule is independent of every other user's,
    any sharding of the id space reassembles to exactly this stream.
    """
    if users is None:
        users = range(spec.n_users)
    for user_id in users:
        yield from user_visits(spec, user_id)


def sample_visits(spec: PopulationSpec, n: int, *,
                  measured_only: bool = True,
                  warm_only: bool = False,
                  per_cohort: bool = False) -> list[Visit]:
    """A deterministic sample of ``n`` schedule entries, in scan order.

    Scans user streams from id 0 upward — ids past ``n_users`` are
    legal stream indices (the population is a distribution, not a
    roster), which guarantees the sample fills even for tiny specs.
    ``per_cohort`` splits the quota evenly across cohorts so sampled
    backends always cover every cohort.
    """
    if n < 1:
        raise ValueError(f"sample size must be >= 1: {n}")
    buckets = len(spec.cohorts) if per_cohort else 1
    quota = -(-n // buckets)  # ceil division
    counts = [0] * buckets
    out: list[Visit] = []
    user_id = 0
    # generous guard: expected users needed is ~n / visits_per_user
    max_users = max(10_000, int(50 * buckets * quota
                                / max(spec.visits_per_user, 1e-6)))
    while min(counts) < quota:
        if user_id >= max_users:
            raise RuntimeError(
                f"could not draw {n} visits from {max_users} user "
                f"streams; spec too sparse for the requested filter")
        for visit in user_visits(spec, user_id):
            if measured_only and not visit.measured:
                continue
            if warm_only and visit.delay_s is None:
                continue
            bucket = visit.cohort if per_cohort else 0
            if counts[bucket] >= quota:
                continue
            counts[bucket] += 1
            out.append(visit)
        user_id += 1
    return out


@dataclass(frozen=True)
class DelayMixture:
    """A revisit-delay distribution quantized onto weighted grid points."""

    delays_s: tuple[float, ...]
    weights: tuple[float, ...]


def delay_mixture(model: RevisitModel, bins: int = 24) -> DelayMixture:
    """Quantize the clamped lognormal mixture onto geometric bins.

    Bin edges are log-spaced over ``[min_delay_s, max_delay_s]``; each
    bin's weight is the *exact* mixture CDF mass between its edges
    (clamp mass folds into the outer bins), and its representative
    delay is the geometric midpoint.  This is what turns "per-user
    delay distributions" into one extra weighted grid axis for the
    vectorized analytic model.
    """
    if bins < 1:
        raise ValueError(f"bins must be >= 1: {bins}")
    lo, hi = model.min_delay_s, model.max_delay_s
    if not 0 < lo < hi:
        raise ValueError(f"degenerate clamp range: [{lo}, {hi}]")
    ratio = hi / lo
    edges = [lo * ratio ** (i / bins) for i in range(bins + 1)]
    delays, weights = [], []
    prev = 0.0
    for i in range(1, bins + 1):
        cum = 1.0 if i == bins else model.cdf(edges[i])
        weights.append(max(0.0, cum - prev))
        prev = cum
        delays.append(math.sqrt(edges[i - 1] * edges[i]))
    total = sum(weights)
    return DelayMixture(delays_s=tuple(delays),
                        weights=tuple(w / total for w in weights))


def cold_fraction(mu_site: float, warmup_share: float) -> float:
    """Population share of *measured* visits to one site that are cold.

    Per-user visits to a site of popularity ``p`` form a thinned
    Poisson stream with mean ``mu_site = visits_per_user * p``, spread
    uniformly over the horizon with a warmup prefix of
    ``warmup_share``.  A user's measured visits include exactly one
    cold load iff the warmup window saw no visit and the measured
    window saw at least one; the population ratio of expectations is::

        exp(-mu*w) * (1 - exp(-mu*(1-w))) / (mu * (1-w))

    ``mu_site -> 0`` gives 1 (every visit is a first visit) and large
    ``mu_site`` gives ~0 (warmup almost surely filled the cache) —
    the popularity-tail behaviour that dominates fleet hit ratios.
    """
    if not 0.0 <= warmup_share < 1.0:
        raise ValueError(f"warmup_share out of [0, 1): {warmup_share}")
    if mu_site <= 0.0:
        return 1.0
    measured_mean = mu_site * (1.0 - warmup_share)
    raw = (math.exp(-mu_site * warmup_share)
           * -math.expm1(-measured_mean) / measured_mean)
    return min(1.0, raw)
