"""Developer cache-header assignment model.

The paper's motivation (§2.2) is that cache headers are chosen by humans
and CMS defaults, not by the resources' true change behaviour:

- many cacheable resources ship with headers that prevent reuse entirely
  ("only about 50 percent of the resources that can be cached are actually
  cached"),
- TTLs come from a small menu of habitual values (5 min, 1 h, 1 d, 1 w...)
  that is *uncorrelated* with when the content actually changes, and is
  conservative on average,
- resources whose change time can't be estimated get ``no-cache``.

This module draws a header policy per resource accordingly.  The share
parameters are calibrated so the generated corpus reproduces the cited
statistics; ``experiments.motivation`` measures them and the test suite
asserts the bands.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

from ..http.headers import Headers
from ..netsim.clock import DAY, HOUR, MINUTE, WEEK

__all__ = ["HeaderPolicy", "DeveloperModel", "TTL_MENU"]


@dataclass(frozen=True)
class HeaderPolicy:
    """The Cache-Control treatment a developer gave one resource.

    ``mode="none"`` models the commonest neglect: *no* Cache-Control at
    all.  Browsers then fall back to heuristic freshness (a fraction of
    the resource's age since Last-Modified), which for recently-deployed
    content means near-constant revalidation — cheap caching for the
    bytes, expensive in round trips.
    """

    #: "none" | "no-store" | "no-cache" | "max-age"
    mode: str
    ttl_s: float = 0.0
    immutable: bool = False

    def to_cache_control(self) -> Optional[str]:
        if self.mode == "none":
            return None
        if self.mode == "no-store":
            return "no-store"
        if self.mode == "no-cache":
            return "no-cache"
        value = f"max-age={int(self.ttl_s)}"
        if self.immutable:
            value += ", immutable"
        return value

    def apply(self, headers: Headers) -> None:
        value = self.to_cache_control()
        if value is None:
            headers.remove("Cache-Control")
        else:
            headers.set("Cache-Control", value)

    @property
    def allows_reuse_without_validation(self) -> bool:
        return self.mode == "max-age" and self.ttl_s > 0


#: The habitual TTL menu with draw weights.  The menu skews short — the
#: "conservative TTLs" phenomenon — because a too-long TTL risks serving
#: stale content and developers fear that more than extra requests.
TTL_MENU: tuple[tuple[float, float], ...] = (
    (5 * MINUTE, 0.16),
    (30 * MINUTE, 0.10),
    (1 * HOUR, 0.18),
    (6 * HOUR, 0.08),
    (1 * DAY, 0.20),
    (1 * WEEK, 0.13),
    (30 * DAY, 0.09),
    (365 * DAY, 0.06),
)


@dataclass(frozen=True)
class DeveloperModel:
    """Distribution over header policies.

    Defaults reproduce the paper's cited numbers; experiments can override
    shares for ablations (e.g. ``no_store_share=0`` models a perfectly
    configured site, the best case for the *status quo*).
    """

    #: share shipped with explicit no-store (CMS "dynamic" defaults)
    no_store_share: float = 0.12
    #: share shipped with *no* cache headers at all (pure neglect)
    missing_share: float = 0.22
    #: share marked no-cache ("can't estimate the TTL at all")
    no_cache_share: float = 0.15
    #: immutable assets (hash-named bundles) that developers DO recognise
    #: and mark with a year-long TTL
    recognised_immutable_share: float = 0.50

    def __post_init__(self) -> None:
        total = self.no_store_share + self.no_cache_share \
            + self.missing_share
        if not 0 <= total <= 1:
            raise ValueError("shares must sum within [0, 1]")

    def draw(self, rng: random.Random,
             change_period_s: Optional[float] = None) -> HeaderPolicy:
        """Draw a policy, optionally informed by the true change period.

        The only correlation with reality: *some* never-changing assets are
        hash-named and get a long immutable TTL.  Everything else is menu
        roulette, faithfully reproducing the mess the paper describes.
        """
        if change_period_s is not None and math.isinf(change_period_s) \
                and rng.random() < self.recognised_immutable_share:
            return HeaderPolicy(mode="max-age", ttl_s=365 * DAY,
                                immutable=True)
        roll = rng.random()
        if roll < self.no_store_share:
            return HeaderPolicy(mode="no-store")
        if roll < self.no_store_share + self.missing_share:
            return HeaderPolicy(mode="none")
        if roll < self.no_store_share + self.missing_share \
                + self.no_cache_share:
            return HeaderPolicy(mode="no-cache")
        ttls = [ttl for ttl, _ in TTL_MENU]
        weights = [weight for _, weight in TTL_MENU]
        ttl = rng.choices(ttls, weights=weights, k=1)[0]
        return HeaderPolicy(mode="max-age", ttl_s=ttl)

    @classmethod
    def well_configured(cls) -> "DeveloperModel":
        """An unrealistically diligent developer (ablation baseline)."""
        return cls(no_store_share=0.0, missing_share=0.0,
                   no_cache_share=0.05, recognised_immutable_share=1.0)
