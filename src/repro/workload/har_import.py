"""Building a :class:`SiteSpec` from a real HAR capture.

The corpus generator substitutes for the paper's cloned homepages; this
module closes the loop for practitioners: export a HAR from your
browser's devtools for *your* page, import it here, and measure what
CacheCatalyst would do for your users — the same "clone and serve"
workflow the paper used, with the HAR as the clone.

What is derived from the HAR:

- the resource set, sizes (``response.bodySize``/``content.size``) and
  MIME-derived kinds,
- each resource's Cache-Control policy (parsed from response headers),
- the dependency structure, approximated from the HAR's initiator-free
  data: documents link everything requested while they loaded; CSS files
  adopt the fonts/images requested after them (heuristic, flagged in the
  spec via ``discovered_via``).

Change periods cannot come from a single capture, so importers choose a
:class:`~repro.workload.churn.ChurnModel` (default: the calibrated one).
"""

from __future__ import annotations

import json
import random
from typing import Optional
from urllib.parse import urlsplit

from ..html.parser import ResourceKind
from ..http.cache_control import parse_cache_control
from .churn import ChurnModel
from .headers_model import HeaderPolicy
from .sitegen import PageSpec, ResourceSpec, SiteSpec

__all__ = ["site_from_har", "HarImportError"]


class HarImportError(ValueError):
    """Raised when the HAR is malformed or unusable."""


_MIME_KINDS: tuple[tuple[str, ResourceKind], ...] = (
    ("text/css", ResourceKind.STYLESHEET),
    ("javascript", ResourceKind.SCRIPT),
    ("ecmascript", ResourceKind.SCRIPT),
    ("image/", ResourceKind.IMAGE),
    ("font", ResourceKind.FONT),
    ("video/", ResourceKind.MEDIA),
    ("audio/", ResourceKind.MEDIA),
    ("json", ResourceKind.FETCH),
    ("text/html", ResourceKind.IFRAME),
)


def _kind_for_mime(mime: str) -> ResourceKind:
    mime = mime.lower()
    for prefix, kind in _MIME_KINDS:
        if prefix in mime:
            return kind
    return ResourceKind.OTHER


def _header(entry_headers: list[dict], name: str) -> Optional[str]:
    name = name.lower()
    for header in entry_headers:
        if str(header.get("name", "")).lower() == name:
            return str(header.get("value", ""))
    return None


def _policy_from_headers(entry_headers: list[dict]) -> HeaderPolicy:
    raw = _header(entry_headers, "Cache-Control")
    if raw is None:
        return HeaderPolicy(mode="none")
    cc = parse_cache_control(raw)
    if cc.no_store:
        return HeaderPolicy(mode="no-store")
    if cc.no_cache:
        return HeaderPolicy(mode="no-cache")
    if cc.max_age is not None:
        return HeaderPolicy(mode="max-age", ttl_s=float(cc.max_age),
                            immutable=cc.immutable)
    return HeaderPolicy(mode="none")


def site_from_har(har: dict | str, origin: Optional[str] = None,
                  churn: Optional[ChurnModel] = None,
                  seed: int = 0) -> SiteSpec:
    """Convert a HAR capture into a servable, measurable site.

    ``har`` is a parsed HAR dict or its JSON text.  ``origin`` filters to
    one origin (default: the first document's); cross-origin entries are
    dropped — the paper's clones did the same (§3 leaves third parties to
    future work).
    """
    if isinstance(har, str):
        try:
            har = json.loads(har)
        except json.JSONDecodeError as exc:
            raise HarImportError(f"not JSON: {exc}") from exc
    try:
        entries = har["log"]["entries"]
    except (KeyError, TypeError):
        raise HarImportError("missing log.entries")
    if not entries:
        raise HarImportError("HAR has no entries")

    churn = churn or ChurnModel()
    rng = random.Random(seed)

    document_entry = None
    for entry in entries:
        mime = str(entry.get("response", {}).get("content", {})
                   .get("mimeType", ""))
        if "text/html" in mime.lower():
            document_entry = entry
            break
    if document_entry is None:
        document_entry = entries[0]

    doc_url = urlsplit(str(document_entry["request"]["url"]))
    if origin is None:
        origin = f"{doc_url.scheme}://{doc_url.netloc}"

    resources: dict[str, ResourceSpec] = {}
    html_refs: list[str] = []
    last_stylesheet: Optional[str] = None
    css_children: dict[str, list[str]] = {}

    for entry in entries:
        if entry is document_entry:
            continue
        url = str(entry["request"]["url"])
        parts = urlsplit(url)
        if f"{parts.scheme}://{parts.netloc}" != origin:
            continue  # cross-origin: out of scope, like the paper
        path = parts.path or "/"
        if parts.query:
            path += "?" + parts.query
        if path in resources:
            continue
        response = entry.get("response", {})
        content = response.get("content", {})
        size = int(content.get("size") or response.get("bodySize") or 0)
        if size <= 0:
            size = 2048  # HAR omitted it; keep the request, guess small
        mime = str(content.get("mimeType", ""))
        kind = _kind_for_mime(mime)
        policy = _policy_from_headers(response.get("headers", []))
        period = churn.draw_period(rng, kind)
        via = "html"
        parent = ""
        if kind in (ResourceKind.FONT, ResourceKind.IMAGE) \
                and last_stylesheet is not None \
                and kind is ResourceKind.FONT:
            # fonts are almost always CSS-discovered
            via, parent = "css", last_stylesheet
            css_children.setdefault(last_stylesheet, []).append(path)
        resources[path] = ResourceSpec(
            url=path, kind=kind, size_bytes=size, policy=policy,
            change_period_s=period, content_seed=rng.getrandbits(48),
            discovered_via=via, parent=parent,
            blocking=(kind is ResourceKind.STYLESHEET))
        if via == "html":
            html_refs.append(path)
        if kind is ResourceKind.STYLESHEET:
            last_stylesheet = path

    # attach collected CSS children
    for sheet_url, children in css_children.items():
        from dataclasses import replace
        sheet = resources[sheet_url]
        resources[sheet_url] = replace(sheet,
                                       children=tuple(children))

    if not resources:
        raise HarImportError(f"no same-origin subresources for {origin}")

    doc_size = int(document_entry.get("response", {}).get("content", {})
                   .get("size") or 30_000)
    page = PageSpec(
        url="/index.html",
        html_size_bytes=max(doc_size, 1_000),
        html_change_period_s=churn.draw_period(rng, None),
        html_content_seed=rng.getrandbits(48),
        html_refs=tuple(html_refs),
        resources=resources)
    return SiteSpec(origin=origin, seed=seed,
                    pages={"/index.html": page})
