"""Synthetic workload: sites, resource distributions, churn, headers.

The corpus substitutes for the paper's 100 cloned homepages; every piece
is seeded and deterministic so experiments are exactly reproducible.
"""

from .churn import ChurnModel, ResourceChurn, DEFAULT_CHANGE_PERIODS
from .corpus import CORPUS_SIZE, Corpus, make_corpus
from .har_import import HarImportError, site_from_har
from .headers_model import DeveloperModel, HeaderPolicy, TTL_MENU
from .population import (CohortSpec, DelayMixture, PopulationSpec, Visit,
                         cold_fraction, delay_mixture, iter_visits,
                         sample_visits, user_stream, user_visits,
                         zipf_weights)
from .revisits import DEFAULT_REVISIT_MODEL, RevisitModel
from .resources import (DEFAULT_SIZES, DEFAULT_TYPE_MIX, SizeModel, TypeMix,
                        draw_kind, draw_resource_count, draw_size)
from .validation import CorpusShape, measure_corpus_shape
from .sitegen import (JS_FETCH_DIRECTIVE, PageSpec, ResourceSpec, SiteShape,
                      SiteSpec, freeze_site, generate_site,
                      render_resource_body)
from .sitegen import render_css, render_html, render_js

__all__ = [
    "Corpus", "make_corpus", "CORPUS_SIZE",
    "SiteSpec", "PageSpec", "ResourceSpec", "SiteShape", "generate_site",
    "freeze_site",
    "render_html", "render_css", "render_js", "render_resource_body",
    "JS_FETCH_DIRECTIVE",
    "ChurnModel", "ResourceChurn", "DEFAULT_CHANGE_PERIODS",
    "DeveloperModel", "HeaderPolicy", "TTL_MENU",
    "site_from_har", "HarImportError",
    "RevisitModel", "DEFAULT_REVISIT_MODEL",
    "PopulationSpec", "CohortSpec", "Visit", "DelayMixture",
    "zipf_weights", "user_stream", "user_visits", "iter_visits",
    "sample_visits", "delay_mixture", "cold_fraction",
    "CorpusShape", "measure_corpus_shape",
    "SizeModel", "TypeMix", "DEFAULT_SIZES", "DEFAULT_TYPE_MIX",
    "draw_kind", "draw_resource_count", "draw_size",
]
