"""High-level CacheCatalyst facade.

The one-import API for downstream users: wire a site (synthetic or your
own content via :class:`~repro.server.site.OriginSite`) to a Catalyst
server and a Catalyst-enabled browser session, and measure visits under a
network condition.

    from repro.core import Catalyst
    from repro.netsim import NetworkConditions

    catalyst = Catalyst.for_site(site_spec)
    timeline = catalyst.visit_sequence(
        NetworkConditions.of(60, 40), delays=["1h", "1d"])
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..browser.engine import BrowserConfig, BrowserSession
from ..browser.metrics import PageLoadResult
from ..netsim.clock import parse_duration
from ..netsim.faults import FaultPlan
from ..netsim.link import Link, NetworkConditions
from ..netsim.sim import Simulator
from ..server.catalyst import CatalystConfig, CatalystServer
from ..server.site import OriginSite
from ..workload.sitegen import SiteSpec
from .modes import CachingMode, ModeSetup, build_mode

__all__ = ["Catalyst", "VisitOutcome", "run_visit_sequence"]


@dataclass
class VisitOutcome:
    """One visit's results within a sequence."""

    at_s: float
    result: PageLoadResult

    @property
    def plt_ms(self) -> float:
        return self.result.plt_ms


def run_visit_sequence(setup: ModeSetup, conditions: NetworkConditions,
                       visit_times_s: Sequence[float],
                       page_url: str = "/index.html",
                       fault_plan: Optional[FaultPlan] = None,
                       tracer=None) -> list[VisitOutcome]:
    """Load ``page_url`` at each absolute time, sharing client state.

    One simulator carries the whole sequence so cache timestamps, churn
    versions, and session recordings stay on a single consistent timeline
    — exactly like the paper's advance-the-system-clock methodology.

    ``fault_plan`` attaches a :class:`~repro.netsim.faults.FaultPlan` to
    every visit's link, injecting losses/resets/truncations/stalls that
    the browser's retry machinery must absorb.

    ``tracer`` (a :class:`repro.obs.Tracer`) records spans from every
    layer of the sequence on the sim clock; its clock is rebound here
    because the simulator does not exist before this call.
    """
    sim = Simulator(tracer=tracer)
    if tracer is not None and tracer.enabled:
        tracer.bind_clock(lambda: sim.now)
        if hasattr(setup.server, "tracer"):
            setup.server.tracer = tracer
    outcomes: list[VisitOutcome] = []
    for at_s in visit_times_s:
        if at_s < sim.now:
            raise ValueError("visit times must be non-decreasing")
        sim.run(until=at_s)
        # connections do not survive the gap between visits
        link = Link(sim, conditions, fault_plan=fault_plan)
        result = sim.run_process(
            setup.session.load(sim, link, setup.handler, page_url,
                               mode_label=setup.label,
                               push_urls_fn=setup.push_urls_fn,
                               hint_urls_fn=setup.hint_urls_fn,
                               session_id=setup.session_id),
            name=f"visit@{at_s}")
        outcomes.append(VisitOutcome(at_s=at_s, result=result))
    return outcomes


@dataclass
class Catalyst:
    """Facade bundling a site with its Catalyst server and client."""

    site: OriginSite
    server: CatalystServer
    browser_config: BrowserConfig = field(default_factory=lambda:
                                          BrowserConfig(
                                              use_service_worker=True))

    @classmethod
    def for_site(cls, site_spec: SiteSpec,
                 server_config: CatalystConfig = CatalystConfig(),
                 browser_config: Optional[BrowserConfig] = None) -> "Catalyst":
        site = OriginSite(site_spec)
        if browser_config is None:
            browser_config = BrowserConfig(use_service_worker=True)
        return cls(site=site,
                   server=CatalystServer(site, config=server_config),
                   browser_config=browser_config)

    def new_session(self) -> BrowserSession:
        return BrowserSession(self.browser_config)

    def visit_sequence(self, conditions: NetworkConditions,
                       delays: Sequence[str | float],
                       page_url: str = "/index.html") -> list[VisitOutcome]:
        """Cold visit at t=0 plus one warm visit per cumulative delay."""
        times = [0.0]
        for delay in delays:
            times.append(times[-1] + parse_duration(delay))
        setup = ModeSetup(mode=CachingMode.CATALYST, server=self.server,
                          session=self.new_session())
        return run_visit_sequence(setup, conditions, times,
                                  page_url=page_url)

    def compare_with_standard(self, conditions: NetworkConditions,
                              delay: str | float,
                              page_url: str = "/index.html"
                              ) -> dict[str, float]:
        """Warm-visit PLT (ms) of catalyst vs standard after ``delay``."""
        delay_s = parse_duration(delay)
        out: dict[str, float] = {}
        for mode in (CachingMode.STANDARD, CachingMode.CATALYST):
            setup = build_mode(mode, self.site.spec, self.browser_config
                               if mode is CachingMode.CATALYST
                               else BrowserConfig())
            outcomes = run_visit_sequence(setup, conditions,
                                          [0.0, delay_s],
                                          page_url=page_url)
            out[mode.value] = outcomes[-1].plt_ms
        return out
