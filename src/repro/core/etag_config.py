"""The ``X-Etag-Config`` map: model, header codec, size accounting.

This is the paper's central artifact: a map of resource URL -> current
ETag that the server staples onto the base HTML response.  The browser's
Service Worker uses it to decide, *without any network round trip*,
whether each cached resource is still current.

Encoding
--------
The header value is compact JSON — ``{"/a.css":"1a2b","/b.js":"9f8e"}`` —
with ETags stripped to their opaque tag (quotes and weakness are
reconstructible: stapled tags are compared with the weak comparison, so
weakness doesn't alter the outcome).  JSON keeps the header debuggable in
devtools, which the paper's open-source artifact also favoured.

Large pages produce large maps; :meth:`EtagConfig.header_size` feeds the
overhead benchmark, and ``max_entries`` guards against unbounded headers
(entries past the cap are dropped largest-URL-last, keeping the most
valuable — render-blocking — entries first when the caller pre-sorts).
"""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Optional

from ..http.etag import ETag
from ..http.headers import Headers

__all__ = ["EtagConfig", "ETAG_CONFIG_HEADER", "ETAG_CONFIG_DIGEST_HEADER",
           "ETAG_CONFIG_SAME_HEADER", "DEFAULT_MAX_ENTRIES",
           "DEFAULT_MAX_HEADER_BYTES"]

logger = logging.getLogger(__name__)

ETAG_CONFIG_HEADER = "X-Etag-Config"

#: request header: digest of the map the client already holds
ETAG_CONFIG_DIGEST_HEADER = "X-Etag-Config-Digest"

#: response header replacing the map when the client's copy is current
ETAG_CONFIG_SAME_HEADER = "X-Etag-Config-Same"

#: Beyond ~8 KB of header the overhead starts to rival a small resource;
#: 512 entries of typical URL+tag length stay well under that.
DEFAULT_MAX_ENTRIES = 512

#: Hard byte cap on the emitted header value.  Entry counting alone
#: cannot bound the header (URLs can be arbitrarily long); past this cap
#: the map is omitted entirely — the header is advisory, so omission
#: degrades to standard revalidation instead of shipping an unbounded
#: header that middleboxes and servers may reject or truncate.
DEFAULT_MAX_HEADER_BYTES = 32 * 1024


@dataclass
class EtagConfig:
    """An ordered URL -> ETag map.

    ``entries`` is treated as immutable after construction (nothing in
    the codebase mutates it); the encoded header value and digest are
    therefore memoized, which turns the per-request ``apply_to`` /
    ``digest`` calls on a cached map into dictionary reads instead of a
    JSON encode + SHA-256 per response.
    """

    entries: dict[str, ETag] = field(default_factory=dict)
    _header_value: Optional[str] = field(default=None, repr=False,
                                         compare=False)
    _digest: Optional[str] = field(default=None, repr=False, compare=False)

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_pairs(cls, pairs: Mapping[str, ETag] | list[tuple[str, ETag]],
                   max_entries: int = DEFAULT_MAX_ENTRIES) -> "EtagConfig":
        items = pairs.items() if isinstance(pairs, Mapping) else pairs
        entries: dict[str, ETag] = {}
        for url, etag in items:
            if len(entries) >= max_entries:
                break
            entries[url] = etag
        return cls(entries=entries)

    # -- lookups ----------------------------------------------------------------
    def etag_for(self, url: str) -> Optional[ETag]:
        return self.entries.get(url)

    def __contains__(self, url: str) -> bool:
        return url in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self.entries)

    def merged_with(self, other: "EtagConfig") -> "EtagConfig":
        """Union of maps; ``other`` wins on conflicts (it is newer)."""
        merged = dict(self.entries)
        merged.update(other.entries)
        return EtagConfig(entries=merged)

    # -- codec ------------------------------------------------------------------
    def to_header_value(self) -> str:
        if self._header_value is None:
            payload = {url: etag.opaque
                       for url, etag in self.entries.items()}
            self._header_value = json.dumps(payload, separators=(",", ":"),
                                            sort_keys=False)
        return self._header_value

    @classmethod
    def from_header_value(cls, value: str) -> "EtagConfig":
        """Parse a header value; raises ValueError on malformed input."""
        try:
            payload = json.loads(value)
        except json.JSONDecodeError as exc:
            raise ValueError(f"malformed {ETAG_CONFIG_HEADER}: {exc}") from exc
        if not isinstance(payload, dict):
            raise ValueError(f"{ETAG_CONFIG_HEADER} must be a JSON object")
        entries: dict[str, ETag] = {}
        for url, opaque in payload.items():
            if not isinstance(url, str) or not isinstance(opaque, str):
                raise ValueError(
                    f"{ETAG_CONFIG_HEADER} entries must be string->string")
            entries[url] = ETag(opaque=opaque)
        return cls(entries=entries)

    @classmethod
    def from_header_value_lenient(
            cls, value: str) -> tuple[Optional["EtagConfig"], int]:
        """Salvage whatever valid entries a damaged header still carries.

        Returns ``(config, dropped)``: the entries that survived (or
        ``None`` when nothing parses at all — truncated JSON, non-object
        payload) and how many entries were discarded for having non-string
        keys or values.  A partially-applicable map is still useful: the
        surviving URLs keep their zero-RTT path while the rest fall back
        to conditional revalidation.
        """
        try:
            payload = json.loads(value)
        except json.JSONDecodeError:
            return None, 0
        if not isinstance(payload, dict):
            return None, 0
        entries: dict[str, ETag] = {}
        dropped = 0
        for url, opaque in payload.items():
            if isinstance(url, str) and isinstance(opaque, str) and opaque:
                entries[url] = ETag(opaque=opaque)
            else:
                dropped += 1
        if not entries:
            return None, dropped
        return cls(entries=entries), dropped

    def apply_to(self, headers: Headers,
                 max_header_bytes: int = DEFAULT_MAX_HEADER_BYTES) -> bool:
        """Set the header on a response (removed when the map is empty).

        Returns True when the header was emitted.  Maps whose encoded
        value exceeds ``max_header_bytes`` are omitted (with a logged
        warning) instead of shipped: clients that never see the header
        simply revalidate conditionally, whereas an oversized header can
        break the whole response at proxies and servers with header-size
        limits.
        """
        if not self.entries:
            headers.remove(ETAG_CONFIG_HEADER)
            return False
        value = self.to_header_value()
        if max_header_bytes is not None \
                and len(value.encode()) > max_header_bytes:
            logger.warning(
                "%s omitted: encoded map is %d bytes (cap %d, %d entries)",
                ETAG_CONFIG_HEADER, len(value.encode()), max_header_bytes,
                len(self.entries))
            headers.remove(ETAG_CONFIG_HEADER)
            return False
        headers.set(ETAG_CONFIG_HEADER, value)
        return True

    @classmethod
    def from_headers(cls, headers: Headers) -> Optional["EtagConfig"]:
        """Extract and parse the header; None when absent or unsalvageable.

        Damaged maps degrade rather than fail: entries that still parse
        are kept (see :meth:`from_header_value_lenient`), and a header
        with nothing salvageable is treated as absent — the client must
        fall back to status-quo behaviour, never break the page load.
        """
        raw = headers.get(ETAG_CONFIG_HEADER)
        if raw is None:
            return None
        config, dropped = cls.from_header_value_lenient(raw)
        if dropped:
            logger.warning(
                "%s partially damaged: %d entr%s dropped, %d kept",
                ETAG_CONFIG_HEADER, dropped, "y" if dropped == 1 else "ies",
                0 if config is None else len(config))
        return config

    def digest(self) -> str:
        """Short content digest of the map (for revisit deduplication).

        A revisit whose page content is unchanged would receive a
        byte-identical map; the client advertises this digest and the
        server replies ``X-Etag-Config-Same`` (a few bytes) instead of
        re-sending kilobytes of JSON.
        """
        import hashlib
        if self._digest is None:
            self._digest = hashlib.sha256(
                self.to_header_value().encode()).hexdigest()[:16]
        return self._digest

    # -- accounting ----------------------------------------------------------
    def header_size(self) -> int:
        """Bytes this map adds to the response head."""
        if not self.entries:
            return 0
        return (len(ETAG_CONFIG_HEADER) + 2
                + len(self.to_header_value().encode()) + 2)
