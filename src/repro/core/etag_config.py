"""The ``X-Etag-Config`` map: model, header codec, size accounting.

This is the paper's central artifact: a map of resource URL -> current
ETag that the server staples onto the base HTML response.  The browser's
Service Worker uses it to decide, *without any network round trip*,
whether each cached resource is still current.

Encoding
--------
The header value is compact JSON — ``{"/a.css":"1a2b","/b.js":"9f8e"}`` —
with ETags stripped to their opaque tag (quotes and weakness are
reconstructible: stapled tags are compared with the weak comparison, so
weakness doesn't alter the outcome).  JSON keeps the header debuggable in
devtools, which the paper's open-source artifact also favoured.

Large pages produce large maps; :meth:`EtagConfig.header_size` feeds the
overhead benchmark, and ``max_entries`` guards against unbounded headers
(entries past the cap are dropped largest-URL-last, keeping the most
valuable — render-blocking — entries first when the caller pre-sorts).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Optional

from ..http.etag import ETag
from ..http.headers import Headers

__all__ = ["EtagConfig", "ETAG_CONFIG_HEADER", "ETAG_CONFIG_DIGEST_HEADER",
           "ETAG_CONFIG_SAME_HEADER", "DEFAULT_MAX_ENTRIES"]

ETAG_CONFIG_HEADER = "X-Etag-Config"

#: request header: digest of the map the client already holds
ETAG_CONFIG_DIGEST_HEADER = "X-Etag-Config-Digest"

#: response header replacing the map when the client's copy is current
ETAG_CONFIG_SAME_HEADER = "X-Etag-Config-Same"

#: Beyond ~8 KB of header the overhead starts to rival a small resource;
#: 512 entries of typical URL+tag length stay well under that.
DEFAULT_MAX_ENTRIES = 512


@dataclass
class EtagConfig:
    """An ordered URL -> ETag map."""

    entries: dict[str, ETag] = field(default_factory=dict)

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_pairs(cls, pairs: Mapping[str, ETag] | list[tuple[str, ETag]],
                   max_entries: int = DEFAULT_MAX_ENTRIES) -> "EtagConfig":
        items = pairs.items() if isinstance(pairs, Mapping) else pairs
        entries: dict[str, ETag] = {}
        for url, etag in items:
            if len(entries) >= max_entries:
                break
            entries[url] = etag
        return cls(entries=entries)

    # -- lookups ----------------------------------------------------------------
    def etag_for(self, url: str) -> Optional[ETag]:
        return self.entries.get(url)

    def __contains__(self, url: str) -> bool:
        return url in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[str]:
        return iter(self.entries)

    def merged_with(self, other: "EtagConfig") -> "EtagConfig":
        """Union of maps; ``other`` wins on conflicts (it is newer)."""
        merged = dict(self.entries)
        merged.update(other.entries)
        return EtagConfig(entries=merged)

    # -- codec ------------------------------------------------------------------
    def to_header_value(self) -> str:
        payload = {url: etag.opaque for url, etag in self.entries.items()}
        return json.dumps(payload, separators=(",", ":"), sort_keys=False)

    @classmethod
    def from_header_value(cls, value: str) -> "EtagConfig":
        """Parse a header value; raises ValueError on malformed input."""
        try:
            payload = json.loads(value)
        except json.JSONDecodeError as exc:
            raise ValueError(f"malformed {ETAG_CONFIG_HEADER}: {exc}") from exc
        if not isinstance(payload, dict):
            raise ValueError(f"{ETAG_CONFIG_HEADER} must be a JSON object")
        entries: dict[str, ETag] = {}
        for url, opaque in payload.items():
            if not isinstance(url, str) or not isinstance(opaque, str):
                raise ValueError(
                    f"{ETAG_CONFIG_HEADER} entries must be string->string")
            entries[url] = ETag(opaque=opaque)
        return cls(entries=entries)

    def apply_to(self, headers: Headers) -> None:
        """Set the header on a response (removed when the map is empty)."""
        if self.entries:
            headers.set(ETAG_CONFIG_HEADER, self.to_header_value())
        else:
            headers.remove(ETAG_CONFIG_HEADER)

    @classmethod
    def from_headers(cls, headers: Headers) -> Optional["EtagConfig"]:
        """Extract and parse the header; None when absent or malformed.

        Malformed maps are treated as absent rather than fatal — a client
        must degrade to status-quo behaviour, never break the page load.
        """
        raw = headers.get(ETAG_CONFIG_HEADER)
        if raw is None:
            return None
        try:
            return cls.from_header_value(raw)
        except ValueError:
            return None

    def digest(self) -> str:
        """Short content digest of the map (for revisit deduplication).

        A revisit whose page content is unchanged would receive a
        byte-identical map; the client advertises this digest and the
        server replies ``X-Etag-Config-Same`` (a few bytes) instead of
        re-sending kilobytes of JSON.
        """
        import hashlib
        return hashlib.sha256(
            self.to_header_value().encode()).hexdigest()[:16]

    # -- accounting ----------------------------------------------------------
    def header_size(self) -> int:
        """Bytes this map adds to the response head."""
        if not self.entries:
            return 0
        return (len(ETAG_CONFIG_HEADER) + 2
                + len(self.to_header_value().encode()) + 2)
