"""Caching modes: one factory per evaluated configuration.

A mode bundles the three things that vary between the paper's compared
systems: which origin server runs, how the browser is configured, and
whether a push planner feeds the loader.  Everything else (link, corpus,
visit schedule) is experiment-level.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Callable, Optional

from ..browser.engine import BrowserConfig, BrowserSession
from ..server.catalyst import CatalystConfig, CatalystServer
from ..server.hints import HintPlanner
from ..server.push import PushPlanner, PushPolicy
from ..server.site import OriginSite
from ..server.static import StaticServer
from ..workload.sitegen import SiteSpec

__all__ = ["CachingMode", "ModeSetup", "build_mode"]


class CachingMode(enum.Enum):
    """Every client/server configuration the benches compare."""

    #: no client caching at all — every visit is a cold load
    NO_CACHE = "no-cache"
    #: status-quo HTTP caching (Figure 1b): max-age + revalidation
    STANDARD = "standard"
    #: the paper's proposal (Figure 1c)
    CATALYST = "catalyst"
    #: catalyst + per-session resource recording (§3 alt / §6)
    CATALYST_SESSIONS = "catalyst-sessions"
    #: HTTP/2 server push of every DOM-visible subresource (§5)
    PUSH_ALL = "push-all"
    #: server push of render-blocking resources only
    PUSH_BLOCKING = "push-blocking"
    #: 103-Early-Hints-style URL lists (Vroom/Polaris family, §5)
    HINTS = "hints"
    #: hints layered on top of the full catalyst stack (they compose)
    CATALYST_HINTS = "catalyst-hints"

    @property
    def uses_catalyst_server(self) -> bool:
        return self in (CachingMode.CATALYST, CachingMode.CATALYST_SESSIONS)


@dataclass
class ModeSetup:
    """Everything a page-load run needs for one mode against one site."""

    mode: CachingMode
    server: object  # StaticServer | CatalystServer (both expose .handle)
    session: BrowserSession
    push_urls_fn: Optional[Callable[[str], list[str]]] = None
    hint_urls_fn: Optional[Callable[[str], list[str]]] = None
    session_id: Optional[str] = None

    @property
    def handler(self):
        return self.server.handle

    @property
    def label(self) -> str:
        return self.mode.value


def build_mode(mode: CachingMode, site_spec: SiteSpec,
               base_config: Optional[BrowserConfig] = None,
               materialize_fully: bool = False) -> ModeSetup:
    """Instantiate server + browser session for ``mode`` over ``site_spec``.

    ``base_config`` carries the shared cost model (``None`` means a
    fresh default per call); the mode toggles only the feature switches
    so comparisons never mix cost assumptions.
    """
    if base_config is None:
        base_config = BrowserConfig()
    site = OriginSite(site_spec, materialize_fully=materialize_fully)

    if mode is CachingMode.NO_CACHE:
        return ModeSetup(
            mode=mode, server=StaticServer(site),
            session=BrowserSession(replace(base_config,
                                           use_http_cache=False,
                                           use_service_worker=False)))

    if mode is CachingMode.STANDARD:
        return ModeSetup(
            mode=mode, server=StaticServer(site),
            session=BrowserSession(replace(base_config,
                                           use_http_cache=True,
                                           use_service_worker=False)))

    if mode is CachingMode.CATALYST:
        return ModeSetup(
            mode=mode, server=CatalystServer(site),
            session=BrowserSession(replace(base_config,
                                           use_http_cache=True,
                                           use_service_worker=True)))

    if mode is CachingMode.CATALYST_SESSIONS:
        server = CatalystServer(
            site, config=CatalystConfig(use_sessions=True))
        return ModeSetup(
            mode=mode, server=server,
            session=BrowserSession(replace(base_config,
                                           use_http_cache=True,
                                           use_service_worker=True)),
            session_id="client-0")

    if mode in (CachingMode.PUSH_ALL, CachingMode.PUSH_BLOCKING):
        policy = (PushPolicy.ALL if mode is CachingMode.PUSH_ALL
                  else PushPolicy.BLOCKING)
        planner = PushPlanner(site=site, policy=policy)
        return ModeSetup(
            mode=mode, server=StaticServer(site),
            session=BrowserSession(replace(base_config,
                                           use_http_cache=True,
                                           use_service_worker=False)),
            push_urls_fn=planner.push_urls)

    if mode is CachingMode.HINTS:
        planner = HintPlanner(site=site)
        return ModeSetup(
            mode=mode, server=StaticServer(site),
            session=BrowserSession(replace(base_config,
                                           use_http_cache=True,
                                           use_service_worker=False)),
            hint_urls_fn=planner.hint_urls)

    if mode is CachingMode.CATALYST_HINTS:
        planner = HintPlanner(site=site)
        return ModeSetup(
            mode=mode, server=CatalystServer(site),
            session=BrowserSession(replace(base_config,
                                           use_http_cache=True,
                                           use_service_worker=True)),
            hint_urls_fn=planner.hint_urls)

    raise ValueError(f"unhandled mode: {mode}")
