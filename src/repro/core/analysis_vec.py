"""Batched closed-form PLT: the analytic model, vectorized over full grids.

:mod:`repro.core.analysis` prices one ``(site, mode, delay, condition)``
cell at a time — fine for spot checks, hopeless for the
``(throughput x latency x delay x corpus x population)`` spaces the
population-scale traffic engine sweeps over.  This module is the same
model restructured for throughput:

1. **Compile once.**  :func:`compile_site` flattens a :class:`SiteSpec`
   into per-resource tensors — size, churn period, policy class and TTL,
   catalyst-coverage flags, fetch level — laid out level-contiguously
   (level 1 | level 2 | level 3) so each wave aggregation sorts a
   contiguous slab.  Compilation is memoized on the site object.
2. **Evaluate in bulk.**  :class:`VectorAnalyticModel` prices *all*
   ``(condition, mode, delay)`` combinations of a compiled site in one
   pass.  The per-resource expected cost is affine in the condition::

       cost = A + B * rtt + G * (8 / downlink_bps)

   with coefficients ``(A, B, G)`` that depend only on ``(mode, delay)``
   — every churn/policy/coverage branch of the scalar model folds into a
   masked coefficient build of shape ``[modes, delays, resources]``,
   after which the full ``[conditions, modes, delays, resources]`` cost
   tensor is two fused multiply-adds.  The wave model (``ceil(n/k)``
   waves, each paying its max) becomes a descending sort plus a strided
   sum: with costs sorted descending, wave ``w``'s maximum is element
   ``w*k``, so the level time is ``sorted[::k].sum()``.  Zero-cost slots
   sort to the bottom and contribute nothing, which reproduces the
   scalar model's ``c > 0`` filter exactly.

Backends: NumPy when importable (``pip install repro[fast]``), else a
pure-Python fallback that walks the same compiled tensors with the same
coefficient algebra — equivalent to float tolerance (property-tested
against the scalar model; ``numpy`` stays an optional extra).  Pass
``backend="python"`` to force the fallback.

All costs are nonnegative by construction; :func:`compile_site` and the
engine validate the inputs (sizes, config costs) that guarantee it,
because the sorted-stride wave trick silently miscounts waves for
negative costs where the scalar model would drop them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..browser.engine import BrowserConfig
from ..html.parser import ResourceKind
from ..netsim.link import NetworkConditions
from ..workload.sitegen import PageSpec, SiteSpec
from .analysis import _HEADER_BYTES
from .modes import CachingMode

__all__ = ["CompiledSite", "compile_site", "VectorAnalyticModel",
           "VisitEstimates", "batch_estimate_plt", "numpy_available"]

try:  # numpy is an optional extra (repro[fast]); everything must run without
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

#: policy classes after folding the scalar model's branch order:
#: ``no-store`` -> always a full fetch; ``no-cache``/``none`` -> always a
#: conditional revalidation; ``max-age`` -> fresh until ``ttl <= delay``.
_POL_NOSTORE, _POL_REVAL, _POL_MAXAGE = 0, 1, 2

#: mode classes the scalar model distinguishes (push/hints modes price
#: like standard HTTP caching in the closed form)
_MC_NO_CACHE, _MC_STANDARD, _MC_CATALYST, _MC_SESSIONS = 0, 1, 2, 3

_CACHE_ATTR = "_analysis_vec_compiled"


def numpy_available() -> bool:
    """Whether the fast backend can be used in this interpreter."""
    return _np is not None


def _mode_class(mode: CachingMode) -> int:
    if mode is CachingMode.NO_CACHE:
        return _MC_NO_CACHE
    if mode is CachingMode.CATALYST:
        return _MC_CATALYST
    if mode is CachingMode.CATALYST_SESSIONS:
        return _MC_SESSIONS
    return _MC_STANDARD


def _policy_class(mode: str) -> int:
    if mode == "no-store":
        return _POL_NOSTORE
    if mode in ("no-cache", "none"):
        return _POL_REVAL
    return _POL_MAXAGE


@dataclass
class CompiledSite:
    """One page flattened into per-resource tensors.

    Slots are level-contiguous: ``[0:level1)`` are the HTML-referenced
    resources, ``[level1:level2)`` their CSS/JS children, ``[level2:n)``
    the grandchildren — exactly the enumeration the scalar model prices.
    Tensors are plain tuples (backend-neutral); the NumPy engine packs
    them into arrays lazily and caches the pack on the instance.
    """

    origin: str
    page_url: str
    #: slot boundaries: (end of level 1, end of level 2, total slots)
    level_ends: tuple[int, int, int]
    size: tuple[float, ...]
    period: tuple[float, ...]
    dynamic: tuple[bool, ...]
    via_js: tuple[bool, ...]
    policy: tuple[int, ...]
    ttl: tuple[float, ...]
    html_size: int
    html_period: float
    #: body sizes of HTML-referenced scripts (the exec-time maximum)
    script_sizes: tuple[int, ...]
    _pack: Optional[dict] = field(default=None, repr=False, compare=False)

    @property
    def n_slots(self) -> int:
        return self.level_ends[2]

    def level_slices(self) -> tuple[slice, slice, slice]:
        end1, end2, end3 = self.level_ends
        return slice(0, end1), slice(end1, end2), slice(end2, end3)

    def numpy_pack(self) -> dict:
        """Arrays for the fast path, built once per compiled site."""
        if self._pack is None:
            self._pack = {
                "size": _np.asarray(self.size, dtype=_np.float64),
                "period": _np.asarray(self.period, dtype=_np.float64),
                "dynamic": _np.asarray(self.dynamic, dtype=bool),
                "via_js": _np.asarray(self.via_js, dtype=bool),
                "nostore": _np.asarray(
                    [p == _POL_NOSTORE for p in self.policy], dtype=bool),
                "reval": _np.asarray(
                    [p == _POL_REVAL for p in self.policy], dtype=bool),
                "maxage": _np.asarray(
                    [p == _POL_MAXAGE for p in self.policy], dtype=bool),
                "ttl": _np.asarray(self.ttl, dtype=_np.float64),
            }
        return self._pack


def compile_site(site: SiteSpec,
                 page_url: Optional[str] = None) -> CompiledSite:
    """Flatten one page of ``site`` into evaluation tensors.

    Memoized on the site object (sites are built once and swept many
    times); pass the same ``site`` again and compilation is free.
    """
    key = page_url or site.index_url
    cache = site.__dict__.setdefault(_CACHE_ATTR, {})
    compiled = cache.get(key)
    if compiled is None:
        compiled = _compile_page(site.origin, key, site.pages[key])
        cache[key] = compiled
    return compiled


def _compile_page(origin: str, page_url: str, page: PageSpec) -> CompiledSite:
    specs = []
    level_counts = [0, 0, 0]
    script_sizes = []

    def add(spec, level: int) -> None:
        if spec.size_bytes < 0:
            raise ValueError(f"negative resource size: {spec.url}")
        specs.append((level, spec))
        level_counts[level] += 1

    for url in page.html_refs:
        spec = page.resources[url]
        add(spec, 0)
        if spec.kind is ResourceKind.SCRIPT:
            script_sizes.append(spec.size_bytes)
        for child_url in spec.children:
            child = page.resources[child_url]
            add(child, 1)
            for grand_url in child.children:
                add(page.resources[grand_url], 2)

    # Level-contiguous layout: stable-sort slots by level.
    specs.sort(key=lambda pair: pair[0])
    end1 = level_counts[0]
    end2 = end1 + level_counts[1]
    end3 = end2 + level_counts[2]
    flat = [spec for _, spec in specs]
    return CompiledSite(
        origin=origin,
        page_url=page_url,
        level_ends=(end1, end2, end3),
        size=tuple(float(s.size_bytes) for s in flat),
        period=tuple(float(s.change_period_s) for s in flat),
        dynamic=tuple(bool(s.dynamic) for s in flat),
        via_js=tuple(s.discovered_via == "js" for s in flat),
        policy=tuple(_policy_class(s.policy.mode) for s in flat),
        ttl=tuple(float(s.policy.ttl_s) for s in flat),
        html_size=page.html_size_bytes,
        html_period=float(page.html_change_period_s),
        script_sizes=tuple(script_sizes),
    )


@dataclass
class VisitEstimates:
    """Joint per-visit estimates for one compiled site.

    ``plt`` is ``[conditions][modes][delays]`` exactly as
    :meth:`VectorAnalyticModel.batch_plt` returns it (NumPy array on
    the fast path, nested lists on the fallback).  ``requests`` and
    ``bytes_down`` are ``[modes][delays]`` nested lists: expected
    origin requests and response bytes per visit.  They are
    condition-independent because they fall out of the same
    ``(A, B, G)`` coefficients that price the PLT — ``B`` sums to the
    expected origin round trips and ``G`` to the expected bytes on the
    wire, so demand costs nothing extra to batch.
    """

    plt: object
    requests: list
    bytes_down: list
    #: resource acquisitions per visit (subresource slots + the HTML)
    acquisitions: int


class VectorAnalyticModel:
    """Expected-PLT pricing for whole grids of analytic cells.

    One instance carries one :class:`BrowserConfig` cost model; the
    network condition, caching mode and revisit delay are batch axes.
    """

    def __init__(self, config: Optional[BrowserConfig] = None,
                 backend: str = "auto"):
        self.config = config if config is not None else BrowserConfig()
        if backend not in ("auto", "numpy", "python"):
            raise ValueError(f"unknown backend {backend!r}")
        if backend == "numpy" and _np is None:
            raise RuntimeError(
                "numpy backend requested but numpy is not importable; "
                "install the [fast] extra or use backend='python'")
        self.backend = ("python" if backend == "python"
                        else "numpy" if _np is not None else "python")
        #: script-exec maxima keyed by the (hashable) script-size tuple —
        #: site-constant, so never recomputed across sweep calls
        self._exec_s_cache: dict[tuple[int, ...], float] = {}
        for name in ("server_think_s", "html_server_think_s",
                     "sw_lookup_s", "cache_lookup_s"):
            if getattr(self.config, name) < 0:
                raise ValueError(f"config.{name} must be nonnegative "
                                 "(the wave aggregation assumes "
                                 "nonnegative per-resource costs)")

    # -- public batch API ---------------------------------------------------
    def batch_plt(self, compiled: "CompiledSite | SiteSpec",
                  modes: Sequence[CachingMode],
                  delays_s: Sequence[float],
                  conditions_list: Sequence[NetworkConditions],
                  cold: bool = False):
        """Expected PLT for every ``(condition, mode, delay)`` cell.

        Returns ``[len(conditions)][len(modes)][len(delays)]`` —
        a NumPy array on the fast path, nested lists on the fallback.
        """
        if isinstance(compiled, SiteSpec):
            compiled = compile_site(compiled)
        delays = [float(d) for d in delays_s]
        if any(not math.isfinite(d) or d < 0 for d in delays):
            raise ValueError(f"delays must be finite and >= 0: {delays}")
        mode_classes = [_mode_class(mode) for mode in modes]
        rtts = [cond.rtt_s for cond in conditions_list]
        invbws = [8.0 / cond.downlink_bps for cond in conditions_list]
        if self.backend == "numpy":
            return self._site_numpy(compiled, mode_classes, delays,
                                    rtts, invbws, cold)
        return self._site_python(compiled, mode_classes, delays,
                                 rtts, invbws, cold)

    def batch_visit(self, compiled: "CompiledSite | SiteSpec",
                    modes: Sequence[CachingMode],
                    delays_s: Sequence[float],
                    conditions_list: Sequence[NetworkConditions],
                    cold: bool = False) -> VisitEstimates:
        """PLT *and* origin demand for every cell, in one coefficient pass.

        The population engine needs expected origin requests and bytes
        alongside the PLT; both are already sitting in the ``(A, B, G)``
        coefficients (``B`` = expected origin round trips per slot,
        ``G`` = expected bytes), so this prices the whole
        ``(mode, delay)`` demand plane for free on top of
        :meth:`batch_plt`.  The HTML document contributes one request
        per visit (fetch or revalidation) plus its churn-weighted
        transfer.
        """
        if isinstance(compiled, SiteSpec):
            compiled = compile_site(compiled)
        delays = [float(d) for d in delays_s]
        if any(not math.isfinite(d) or d < 0 for d in delays):
            raise ValueError(f"delays must be finite and >= 0: {delays}")
        mode_classes = [_mode_class(mode) for mode in modes]
        rtts = [cond.rtt_s for cond in conditions_list]
        invbws = [8.0 / cond.downlink_bps for cond in conditions_list]
        html_full_bytes = compiled.html_size + _HEADER_BYTES
        if self.backend == "numpy":
            coeffs = self._coeff_numpy(compiled, mode_classes, delays, cold)
            plt = self._site_numpy(compiled, mode_classes, delays,
                                   rtts, invbws, cold, coeffs=coeffs)
            _, coeff_b, coeff_g = coeffs
            p_html = self._p_html_numpy(compiled, delays)          # [D]
            requests = coeff_b.sum(axis=-1) + 1.0                  # [M,D]
            html_bytes = _np.empty((len(mode_classes), len(delays)))
            for mi, mc in enumerate(mode_classes):
                if cold or mc == _MC_NO_CACHE:
                    html_bytes[mi, :] = html_full_bytes
                else:
                    html_bytes[mi, :] = p_html * html_full_bytes
            bytes_down = coeff_g.sum(axis=-1) + html_bytes
            return VisitEstimates(plt=plt, requests=requests.tolist(),
                                  bytes_down=bytes_down.tolist(),
                                  acquisitions=compiled.n_slots + 1)
        requests = [[0.0] * len(delays) for _ in mode_classes]
        bytes_down = [[0.0] * len(delays) for _ in mode_classes]
        plt = self._site_python(compiled, mode_classes, delays,
                                rtts, invbws, cold,
                                demand=(requests, bytes_down))
        return VisitEstimates(plt=plt, requests=requests,
                              bytes_down=bytes_down,
                              acquisitions=compiled.n_slots + 1)

    def _exec_s(self, comp: CompiledSite) -> float:
        exec_s = self._exec_s_cache.get(comp.script_sizes)
        if exec_s is None:
            exec_s = (max(self.config.script_model.execution_time(s)
                          for s in comp.script_sizes)
                      if comp.script_sizes else 0.0)
            self._exec_s_cache[comp.script_sizes] = exec_s
        return exec_s

    def sweep(self, sites: Sequence[SiteSpec | CompiledSite],
              modes: Sequence[CachingMode],
              delays_s: Sequence[float],
              conditions_list: Sequence[NetworkConditions],
              cold: bool = False):
        """Batch over sites: ``[site][condition][mode][delay]``.

        Accepts raw :class:`SiteSpec` objects (compiled and memoized on
        the fly) or precompiled sites.
        """
        compiled = [site if isinstance(site, CompiledSite)
                    else compile_site(site) for site in sites]
        per_site = [self.batch_plt(comp, modes, delays_s,
                                   conditions_list, cold=cold)
                    for comp in compiled]
        if self.backend == "numpy":
            return _np.stack(per_site) if per_site else _np.zeros(
                (0, len(conditions_list), len(modes), len(delays_s)))
        return per_site

    # -- numpy fast path ----------------------------------------------------
    def _coeff_numpy(self, comp: CompiledSite, mode_classes, delays, cold):
        """Per-slot ``(A, B, G)`` coefficient stacks, each ``[M, D, n]``."""
        np = _np
        cfg = self.config
        pack = comp.numpy_pack()
        n = comp.n_slots
        D = len(delays)
        think = cfg.server_think_s
        sw = cfg.sw_lookup_s
        lookup = cfg.cache_lookup_s

        delay = np.asarray(delays, dtype=np.float64)

        size_h = pack["size"] + _HEADER_BYTES                      # [n]
        # P(changed within delay): 1 - exp(-delay/tau); dynamic -> 1,
        # immutable (tau = inf) -> exp(-0) -> 0, matching the scalar.
        p = 1.0 - np.exp(-delay[:, None] / pack["period"][None, :])  # [D,n]
        p = np.where(pack["dynamic"][None, :], 1.0, p)

        # Standard-HTTP-caching coefficients [D, n]: fresh until proven
        # otherwise, expired -> conditional-revalidation mix, no-store
        # -> always a full fetch.
        expired = pack["reval"][None, :] | (
            pack["maxage"][None, :]
            & (pack["ttl"][None, :] <= delay[:, None]))            # [D,n]
        nostore = pack["nostore"][None, :]
        sa = np.where(nostore, think, np.where(expired, think, lookup))
        sb = np.where(nostore | expired, 1.0, 0.0)
        sg = np.where(nostore, size_h,
                      np.where(expired, p * pack["size"] + _HEADER_BYTES,
                               0.0))

        a_rows, b_rows, g_rows = [], [], []
        full_a = np.full((D, n), think)
        full_b = np.ones((D, n))
        full_g = np.broadcast_to(size_h, (D, n))
        for mc in mode_classes:
            if cold or mc == _MC_NO_CACHE:
                a_rows.append(full_a)
                b_rows.append(full_b)
                g_rows.append(full_g)
            elif mc in (_MC_CATALYST, _MC_SESSIONS):
                covered = ~pack["dynamic"]
                if mc == _MC_CATALYST:
                    # static stapling cannot see JS-discovered resources
                    covered = covered & ~pack["via_js"]
                cov = covered[None, :]
                a_rows.append(np.where(cov, sw + p * (think - sw), sa))
                b_rows.append(np.where(cov, p, sb))
                g_rows.append(np.where(cov, p * size_h, sg))
            else:
                a_rows.append(sa)
                b_rows.append(sb)
                g_rows.append(sg)
        return np.stack(a_rows), np.stack(b_rows), np.stack(g_rows)

    def _p_html_numpy(self, comp: CompiledSite, delays):
        np = _np
        delay = np.asarray(delays, dtype=np.float64)
        return (np.zeros(len(delays)) if math.isinf(comp.html_period)
                else 1.0 - np.exp(-delay / comp.html_period))       # [D]

    def _site_numpy(self, comp: CompiledSite, mode_classes, delays,
                    rtts, invbws, cold, coeffs=None):
        np = _np
        cfg = self.config
        n = comp.n_slots
        C, M, D = len(rtts), len(mode_classes), len(delays)
        k = cfg.connections_per_origin

        rtt = np.asarray(rtts, dtype=np.float64)
        invbw = np.asarray(invbws, dtype=np.float64)

        if coeffs is None:
            coeffs = self._coeff_numpy(comp, mode_classes, delays, cold)
        coeff_a, coeff_b, coeff_g = coeffs                         # [M,D,n]

        # cost[C,M,D,n] = A + B*rtt + G*invbw: two fused passes + add.
        cost = np.empty((C, M, D, n))
        tmp = np.empty((C, M, D, n))
        np.multiply(coeff_b[None], rtt[:, None, None, None], out=cost)
        np.multiply(coeff_g[None], invbw[:, None, None, None], out=tmp)
        np.add(cost, tmp, out=cost)
        np.add(cost, coeff_a[None], out=cost)

        # Wave model per level: descending sort, strided sum of wave
        # maxima.  In-place ascending sort on the contiguous level slab,
        # then walk it backwards with stride k.
        total = np.zeros((C, M, D))
        for sl in comp.level_slices():
            width = sl.stop - sl.start
            if width <= 0:
                continue
            slab = cost[..., sl]
            if width <= k:
                # single wave: the max IS the wave sum (costs are >= 0,
                # so all-fresh levels contribute max(...) == 0 exactly
                # like the scalar's positive-cost filter)
                total += slab.max(axis=-1)
            else:
                slab.sort(axis=-1)
                total += slab[..., ::-1][..., ::k].sum(axis=-1)

        # Navigation terms: setup RTTs, base HTML, parse, script exec.
        setup = cfg.connection_policy.setup_rtts * rtt             # [C]
        html_transfer = (comp.html_size + _HEADER_BYTES) * invbw   # [C]
        p_html = self._p_html_numpy(comp, delays)                  # [D]
        html_full = rtt + cfg.html_server_think_s + html_transfer  # [C]
        html_warm = (rtt[:, None] + cfg.html_server_think_s
                     + p_html[None, :] * html_transfer[:, None])   # [C,D]
        for mi, mc in enumerate(mode_classes):
            if cold or mc == _MC_NO_CACHE:
                total[:, mi, :] += html_full[:, None]
            else:
                total[:, mi, :] += html_warm
        total += setup[:, None, None]
        total += cfg.parse_time(comp.html_size)
        total += self._exec_s(comp)
        return total

    # -- pure-python fallback ----------------------------------------------
    def _coeffs_python(self, comp: CompiledSite, mode_class: int,
                       delay: float, cold: bool):
        """Per-slot ``(A, B, G)`` coefficient lists for one (mode, delay)."""
        cfg = self.config
        think = cfg.server_think_s
        sw = cfg.sw_lookup_s
        lookup = cfg.cache_lookup_s
        exp = math.exp
        coeffs = []
        for i in range(comp.n_slots):
            size = comp.size[i]
            size_h = size + _HEADER_BYTES
            if cold or mode_class == _MC_NO_CACHE:
                coeffs.append((think, 1.0, size_h))
                continue
            dynamic = comp.dynamic[i]
            period = comp.period[i]
            p = (1.0 if dynamic
                 else 0.0 if math.isinf(period)
                 else 1.0 - exp(-delay / period))
            if mode_class in (_MC_CATALYST, _MC_SESSIONS) \
                    and not dynamic \
                    and (mode_class == _MC_SESSIONS or not comp.via_js[i]):
                coeffs.append((sw + p * (think - sw), p, p * size_h))
                continue
            policy = comp.policy[i]
            if policy == _POL_NOSTORE:
                coeffs.append((think, 1.0, size_h))
            elif policy == _POL_REVAL or comp.ttl[i] <= delay:
                coeffs.append((think, 1.0, p * size + _HEADER_BYTES))
            else:
                coeffs.append((lookup, 0.0, 0.0))
        return coeffs

    def _site_python(self, comp: CompiledSite, mode_classes, delays,
                     rtts, invbws, cold, demand=None):
        cfg = self.config
        k = cfg.connections_per_origin
        levels = comp.level_slices()
        parse = cfg.parse_time(comp.html_size)
        exec_s = self._exec_s(comp)
        setup_rtts = cfg.connection_policy.setup_rtts
        html_transfer_bits = (comp.html_size + _HEADER_BYTES) * 8.0
        C, M, D = len(rtts), len(mode_classes), len(delays)
        out = [[[0.0] * D for _ in range(M)] for _ in range(C)]
        for mi, mc in enumerate(mode_classes):
            for di, delay in enumerate(delays):
                coeffs = self._coeffs_python(comp, mc, delay, cold)
                per_level = [coeffs[sl] for sl in levels]
                if cold or mc == _MC_NO_CACHE:
                    p_html = 1.0
                elif math.isinf(comp.html_period):
                    p_html = 0.0
                else:
                    p_html = 1.0 - math.exp(-delay / comp.html_period)
                if demand is not None:
                    # same coefficients, summed instead of wave-priced:
                    # B -> expected origin requests, G -> expected bytes
                    # (+ the HTML document's request and transfer)
                    requests, bytes_down = demand
                    requests[mi][di] = 1.0 + sum(b for _, b, _ in coeffs)
                    bytes_down[mi][di] = (
                        p_html * (html_transfer_bits / 8.0)
                        + sum(g for _, _, g in coeffs))
                for ci in range(C):
                    rtt, invbw = rtts[ci], invbws[ci]
                    plt = (setup_rtts * rtt + parse + exec_s
                           + rtt + cfg.html_server_think_s
                           + p_html * (html_transfer_bits / 8.0) * invbw)
                    for level in per_level:
                        costs = sorted(
                            (c for c in (a + b * rtt + g * invbw
                                         for a, b, g in level) if c > 0),
                            reverse=True)
                        plt += sum(costs[0::k])
                    out[ci][mi][di] = plt
        return out


def batch_estimate_plt(site: SiteSpec,
                       modes: Sequence[CachingMode],
                       delays_s: Sequence[float],
                       conditions_list: Sequence[NetworkConditions],
                       config: Optional[BrowserConfig] = None,
                       cold: bool = False,
                       backend: str = "auto"):
    """Module-level convenience: compile + batch-evaluate one site."""
    model = VectorAnalyticModel(config=config, backend=backend)
    return model.batch_plt(compile_site(site), modes, delays_s,
                           conditions_list, cold=cold)
