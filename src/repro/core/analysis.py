"""Closed-form (analytic) PLT model.

A back-of-the-envelope companion to the discrete-event simulator: expected
page-load time as a sum over fetch "levels" (HTML -> statically visible
resources -> CSS/JS children), with per-resource expected costs driven by
the same churn and header models the simulator uses.

Two jobs:

1. **Validation** — the ablation bench checks the analytic and simulated
   PLTs track each other across the Figure 3 grid (rank correlation),
   evidence that the simulator's numbers come from the modelled mechanisms
   rather than implementation accidents.
2. **Intuition** — the model makes the paper's story legible: at high
   bandwidth the ``size/bw`` terms vanish and PLT collapses to a count of
   RTTs, which is exactly the count CacheCatalyst shrinks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ..browser.engine import BrowserConfig
from ..html.parser import ResourceKind
from ..netsim.link import NetworkConditions
from ..workload.sitegen import ResourceSpec, SiteSpec
from .modes import CachingMode

__all__ = ["AnalyticModel", "estimate_plt", "estimate_reduction"]

_HEADER_BYTES = 350.0
_REQUEST_RTT = 1.0


def _change_probability(period_s: float, delta_s: float) -> float:
    """P(content changed within ``delta_s``) for a churn period.

    Same exponential model as :meth:`ResourceChurn.change_probability`,
    computed straight from the period already stored on the spec — the
    churn params are fixed at site-generation time, so there is no need
    to build a churn object (RNG state and all) per resource per call.
    """
    if math.isinf(period_s):
        return 0.0
    return 1.0 - math.exp(-delta_s / period_s)


@dataclass
class AnalyticModel:
    """Expected-PLT calculator for one network condition."""

    conditions: NetworkConditions
    config: BrowserConfig = field(default_factory=BrowserConfig)

    # -- per-resource expected cost ------------------------------------------
    def _transfer_s(self, nbytes: float) -> float:
        return (nbytes + _HEADER_BYTES) * 8.0 / self.conditions.downlink_bps

    def _full_fetch_s(self, nbytes: float) -> float:
        return (self.conditions.rtt_s + self.config.server_think_s
                + self._transfer_s(nbytes))

    def _revalidation_s(self) -> float:
        return (self.conditions.rtt_s + self.config.server_think_s
                + self._transfer_s(0))

    def expected_resource_s(self, spec: ResourceSpec, mode: CachingMode,
                            delay_s: float) -> float:
        """Expected acquisition time of one resource on a warm visit."""
        p_changed = (1.0 if spec.dynamic
                     else _change_probability(spec.change_period_s, delay_s))
        full = self._full_fetch_s(spec.size_bytes)
        reval = self._revalidation_s()

        if mode is CachingMode.NO_CACHE:
            return full

        covered_by_catalyst = (mode in (CachingMode.CATALYST,
                                        CachingMode.CATALYST_SESSIONS)
                               and not spec.dynamic)
        if mode is CachingMode.CATALYST and spec.discovered_via == "js":
            covered_by_catalyst = False  # static stapling can't see it (§3)
        if covered_by_catalyst:
            hit = self.config.sw_lookup_s
            return p_changed * full + (1.0 - p_changed) * hit

        # Status-quo HTTP caching.
        policy = spec.policy
        if policy.mode == "no-store":
            return full
        if policy.mode in ("no-cache", "none") or policy.ttl_s <= delay_s:
            # expired (or always-revalidate): conditional request
            return p_changed * full + (1.0 - p_changed) * reval
        # still fresh
        return self.config.cache_lookup_s

    # -- page-level aggregation ------------------------------------------------
    def _level_s(self, costs: list[float]) -> float:
        """Completion time of one parallel fetch level.

        Connection-limited wave model: ``ceil(n/k)`` request waves each
        paying the max per-resource latency in the wave, while all bytes
        share the downlink.  Exact for k >= n; a standard approximation
        otherwise.
        """
        costs = [c for c in costs if c > 0]
        if not costs:
            return 0.0
        k = self.config.connections_per_origin
        waves = math.ceil(len(costs) / k)
        costs.sort(reverse=True)
        total = 0.0
        for wave in range(waves):
            chunk = costs[wave * k:(wave + 1) * k]
            total += max(chunk)
        return total

    def estimate_plt(self, site: SiteSpec, mode: CachingMode,
                     delay_s: float, cold: bool = False) -> float:
        """Expected PLT in seconds for a visit after ``delay_s``."""
        page = site.index
        setup = self.config.connection_policy.setup_rtts \
            * self.conditions.rtt_s
        html = (self.conditions.rtt_s + self.config.html_server_think_s
                + self._transfer_s(page.html_size_bytes))
        if not cold and mode is not CachingMode.NO_CACHE:
            # base HTML is no-cache: warm visits revalidate; the HTML body
            # itself usually changed (fast churn), so charge a weighted mix
            p_html = _change_probability(page.html_change_period_s, delay_s)
            html = (self.conditions.rtt_s + self.config.html_server_think_s
                    + p_html * self._transfer_s(page.html_size_bytes))
        parse = self.config.parse_time(page.html_size_bytes)

        def cost(spec: ResourceSpec) -> float:
            if cold:
                return self._full_fetch_s(spec.size_bytes)
            return self.expected_resource_s(spec, mode, delay_s)

        level1 = [cost(page.resources[url]) for url in page.html_refs]
        level2: list[float] = []
        level3: list[float] = []
        exec_s = 0.0
        for url in page.html_refs:
            spec = page.resources[url]
            if spec.kind is ResourceKind.SCRIPT:
                exec_s = max(exec_s, self.config.script_model
                             .execution_time(spec.size_bytes))
            for child_url in spec.children:
                child = page.resources[child_url]
                level2.append(cost(child))
                for grand_url in child.children:
                    level3.append(cost(page.resources[grand_url]))
        return (setup + html + parse
                + self._level_s(level1) + exec_s
                + self._level_s(level2) + self._level_s(level3))


def estimate_plt(site: SiteSpec, mode: CachingMode, delay_s: float,
                 conditions: NetworkConditions,
                 config: Optional[BrowserConfig] = None,
                 cold: bool = False) -> float:
    """Module-level convenience wrapper.

    ``config=None`` means "a fresh default per call" — a shared
    module-level default instance would leak mutations (the config holds
    mutable sub-models) between unrelated callers.
    """
    model = AnalyticModel(conditions,
                          config if config is not None else BrowserConfig())
    return model.estimate_plt(site, mode, delay_s, cold=cold)


def estimate_reduction(site: SiteSpec, delay_s: float,
                       conditions: NetworkConditions,
                       config: Optional[BrowserConfig] = None) -> float:
    """Expected fractional PLT reduction of catalyst vs standard."""
    model = AnalyticModel(conditions,
                          config if config is not None else BrowserConfig())
    standard = model.estimate_plt(site, CachingMode.STANDARD, delay_s)
    catalyst = model.estimate_plt(site, CachingMode.CATALYST, delay_s)
    if standard <= 0:
        return 0.0
    return (standard - catalyst) / standard
