"""The paper's contribution, packaged: ETag stapling end to end.

Attribute access is lazy (PEP 562): :mod:`repro.browser` depends on
:mod:`repro.core.etag_config`, while the higher-level members here depend
back on :mod:`repro.browser` — eager imports would cycle.
"""

from .etag_config import (DEFAULT_MAX_ENTRIES, ETAG_CONFIG_HEADER,
                          EtagConfig)

__all__ = [
    "EtagConfig", "ETAG_CONFIG_HEADER", "DEFAULT_MAX_ENTRIES",
    "CachingMode", "ModeSetup", "build_mode",
    "Catalyst", "VisitOutcome", "run_visit_sequence",
    "AnalyticModel", "estimate_plt", "estimate_reduction",
    "VectorAnalyticModel", "CompiledSite", "compile_site",
    "batch_estimate_plt", "numpy_available",
]

_LAZY = {
    "CachingMode": "modes",
    "ModeSetup": "modes",
    "build_mode": "modes",
    "Catalyst": "catalyst",
    "VisitOutcome": "catalyst",
    "run_visit_sequence": "catalyst",
    "AnalyticModel": "analysis",
    "estimate_plt": "analysis",
    "estimate_reduction": "analysis",
    "VectorAnalyticModel": "analysis_vec",
    "CompiledSite": "analysis_vec",
    "compile_site": "analysis_vec",
    "batch_estimate_plt": "analysis_vec",
    "numpy_available": "analysis_vec",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module
    module = import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
