"""Run manifests: provenance stamps for benchmark artifacts.

A ``BENCH_*.json`` number is only evidence if we know *exactly what
produced it* — which configuration, which seeds, which code revision,
on which interpreter, with how many workers, for how long.  The
trajectory gate (``benchmarks/compare_bench.py``) diffs artifacts
across PRs; without provenance it can silently compare a 3-site run
against an 8-site run and call the difference a regression.

A manifest is a plain dict::

    {
      "schema_version": 1,
      "created_utc": "2026-08-07T12:00:00Z",
      "git_rev": "fcc24ff...",            # or "unknown" outside a repo
      "python": "3.12.3",
      "platform": "Linux-6.8...-x86_64",
      "config": {"bench": "...", ...},    # the *identity*: runs with
                                          # different config are not
                                          # comparable
      "sampling": {"repeats": 300},       # how long/hard we measured —
                                          # may differ across runs
      "seeds": [21],
      "workers": 1,
      "wall_time_s": 12.3,                # null when not measured
    }

``config`` vs ``sampling`` is the load-bearing split: the gate refuses
to compare two artifacts whose ``config`` differs (different workload,
meaningless diff) but tolerates different ``sampling`` (measuring the
same workload for longer is still the same experiment).
"""

from __future__ import annotations

import json
import pathlib
import platform as _platform
import subprocess
import time
from typing import Mapping, Optional, Sequence

__all__ = ["MANIFEST_SCHEMA_VERSION", "build_manifest", "stamp",
           "validate_manifest", "comparable", "git_rev", "manifest_json"]

MANIFEST_SCHEMA_VERSION = 1

#: required manifest fields and the types validation enforces
_REQUIRED: tuple[tuple[str, type], ...] = (
    ("schema_version", int),
    ("created_utc", str),
    ("git_rev", str),
    ("python", str),
    ("platform", str),
    ("config", dict),
    ("workers", int),
)


def git_rev(repo_dir: Optional[pathlib.Path] = None) -> str:
    """The current commit hash, or ``"unknown"`` outside a work tree."""
    if repo_dir is None:
        # src/repro/obs/manifest.py -> repo root is three parents up
        repo_dir = pathlib.Path(__file__).resolve().parents[3]
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=repo_dir,
            capture_output=True, text=True, timeout=5.0)
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "unknown"


def build_manifest(config: Mapping,
                   sampling: Optional[Mapping] = None,
                   seeds: Optional[Sequence[int]] = None,
                   workers: int = 1,
                   wall_time_s: Optional[float] = None) -> dict:
    """Assemble a manifest for one run.

    ``config`` is the run's *identity* (workload shape, seed-determined
    corpus, mode); ``sampling`` holds measurement-effort knobs (repeat
    counts, rounds) that may legitimately differ between two otherwise
    comparable runs.
    """
    if not config:
        raise ValueError("manifest config must not be empty")
    return {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "git_rev": git_rev(),
        "python": _platform.python_version(),
        "platform": _platform.platform(),
        "config": dict(config),
        "sampling": dict(sampling) if sampling else {},
        "seeds": list(seeds) if seeds is not None else [],
        "workers": workers,
        "wall_time_s": (round(wall_time_s, 3)
                        if wall_time_s is not None else None),
    }


def stamp(payload: dict, manifest: Mapping) -> dict:
    """Attach ``manifest`` to an artifact payload (returns ``payload``)."""
    payload["manifest"] = dict(manifest)
    return payload


def validate_manifest(manifest: object) -> list[str]:
    """All schema violations, as human-readable strings; [] when valid."""
    if not isinstance(manifest, Mapping):
        return [f"manifest is {type(manifest).__name__}, not a mapping"]
    errors = []
    for field, kind in _REQUIRED:
        value = manifest.get(field)
        if value is None:
            errors.append(f"missing required field {field!r}")
        elif not isinstance(value, kind) or isinstance(value, bool):
            errors.append(f"field {field!r} is "
                          f"{type(value).__name__}, expected "
                          f"{kind.__name__}")
    if not errors:
        if manifest["schema_version"] > MANIFEST_SCHEMA_VERSION:
            errors.append(
                f"schema_version {manifest['schema_version']} is newer "
                f"than supported {MANIFEST_SCHEMA_VERSION}")
        if not manifest["config"]:
            errors.append("config must not be empty")
        if manifest["workers"] < 1:
            errors.append(f"workers must be >= 1, "
                          f"got {manifest['workers']}")
    return errors


def comparable(a: Mapping, b: Mapping) -> tuple[bool, str]:
    """Whether two manifests describe comparable runs.

    Comparable means the identity ``config`` dicts are equal; the
    reason string names the first differing key otherwise.
    """
    config_a, config_b = a.get("config", {}), b.get("config", {})
    if config_a == config_b:
        return True, ""
    for key in sorted(set(config_a) | set(config_b)):
        if config_a.get(key) != config_b.get(key):
            return False, (f"config[{key!r}] differs: "
                           f"{config_a.get(key)!r} vs "
                           f"{config_b.get(key)!r}")
    return False, "configs differ"


def _json_default(value):  # pragma: no cover - defensive
    return str(value)


def manifest_json(manifest: Mapping) -> str:
    """Canonical JSON rendering (sorted keys), for sidecar files."""
    return json.dumps(manifest, indent=2, sort_keys=True,
                      default=_json_default) + "\n"
