"""W3C Trace Context for the cross-process serving path.

The DES stack keeps causality by threading :class:`~repro.obs.trace.Span`
objects through function calls; the real-socket stack cannot — the
client's ``http.request`` span lives in the load-driver process while the
``server.request`` span that answers it lives in a fleet worker.  The
bridge is the standard one: a ``traceparent`` header (W3C Trace Context,
https://www.w3.org/TR/trace-context/) carried on the wire request.

Encoding choices, pinned here so client, server and exporter agree:

- **trace-id** (32 hex): the tracer's ``trace_id`` is 16 hex chars
  (``uuid4().hex[:16]``), left-padded with zeros.  Anything that is not
  1–32 hex chars (tests use ids like ``"t1"``) is hashed (SHA-256, first
  32 hex) so the header is always spec-valid.
- **parent-id** (16 hex): ``{pid:08x}{span_id:08x}`` — the *pid-
  namespaced* span identity.  This is exactly the namespacing the trace
  exporter applies to merged fleet traces, so a decoded remote parent
  links to the client span with no translation table.
- **tracestate**: one ``repro=attempt:N`` member carries the client's
  retry ordinal, so a server can see "this is the same logical request,
  third try" — retries stay causally attached to one request span.

Parsing is strict where the spec is strict (field lengths, hex alphabet,
all-zero ids are invalid, version ``ff`` is invalid) and lenient where
it demands leniency (unknown future versions parse their known prefix;
an unparseable header is treated as absent, never an error — a trace
header must not be able to take a request down).
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass
from typing import Optional

__all__ = ["TraceContext", "TRACEPARENT_HEADER", "TRACESTATE_HEADER",
           "canonical_trace_id", "encode_parent_id", "decode_parent_id",
           "format_traceparent", "format_tracestate", "parse_traceparent",
           "parse_attempt", "inject_context", "extract_context"]

#: the two headers this module owns (lowercase, per the spec)
TRACEPARENT_HEADER = "traceparent"
TRACESTATE_HEADER = "tracestate"

#: the only version we emit
_VERSION = "00"

#: sampled flag — we only propagate contexts we are actually recording
_FLAGS_SAMPLED = "01"

_HEX_RE = re.compile(r"^[0-9a-f]+$")

_ATTEMPT_RE = re.compile(r"(?:^|[,\s])repro=attempt:(\d+)(?:;|,|$)")


def _is_hex(text: str) -> bool:
    return bool(_HEX_RE.match(text))


def canonical_trace_id(raw: str) -> str:
    """``raw`` as a spec-valid 32-hex trace-id.

    Hex inputs (any case, up to 32 chars) are lowercased and left-padded;
    everything else is hashed, so arbitrary test ids still produce a
    valid, deterministic header.  Never all-zero.
    """
    text = (raw or "").lower()
    if text and len(text) <= 32 and _is_hex(text):
        padded = text.rjust(32, "0")
    else:
        padded = hashlib.sha256(text.encode()).hexdigest()[:32]
    if padded == "0" * 32:
        # all-zero is the spec's "invalid" sentinel; nudge the last bit
        padded = "0" * 31 + "1"
    return padded


def encode_parent_id(pid: int, span_id: int) -> str:
    """``(pid, span_id)`` -> 16-hex parent-id (the pid-namespaced span)."""
    return f"{pid & 0xFFFFFFFF:08x}{span_id & 0xFFFFFFFF:08x}"


def decode_parent_id(text: str) -> tuple[int, int]:
    """16-hex parent-id -> ``(pid, span_id)``."""
    return int(text[:8], 16), int(text[8:], 16)


def format_traceparent(trace_id: str, pid: int, span_id: int,
                       sampled: bool = True) -> str:
    """One spec-valid ``traceparent`` value for a local span."""
    flags = _FLAGS_SAMPLED if sampled else "00"
    return (f"{_VERSION}-{canonical_trace_id(trace_id)}-"
            f"{encode_parent_id(pid, span_id)}-{flags}")


def format_tracestate(attempt: int) -> str:
    """The ``tracestate`` member carrying the retry ordinal."""
    return f"repro=attempt:{attempt}"


def parse_attempt(tracestate: Optional[str]) -> Optional[int]:
    """The ``repro=attempt:N`` ordinal, or None when absent/foreign."""
    if not tracestate:
        return None
    match = _ATTEMPT_RE.search(tracestate)
    return int(match.group(1)) if match else None


@dataclass(frozen=True)
class TraceContext:
    """A parsed remote trace context."""

    trace_id: str           #: 32 lowercase hex
    parent_id: str          #: 16 lowercase hex
    sampled: bool = True
    #: retry ordinal from ``tracestate`` (``repro=attempt:N``), if any
    attempt: Optional[int] = None

    @property
    def parent_ref(self) -> tuple[int, int]:
        """The remote parent as ``(pid, span_id)``."""
        return decode_parent_id(self.parent_id)

    def to_header(self) -> str:
        flags = _FLAGS_SAMPLED if self.sampled else "00"
        return f"{_VERSION}-{self.trace_id}-{self.parent_id}-{flags}"


def parse_traceparent(header: Optional[str]) -> Optional[TraceContext]:
    """Parse a ``traceparent`` value; None for absent or invalid.

    Strict on structure (field lengths, lowercase hex, all-zero ids,
    version ``ff``); tolerant of future versions carrying extra
    dash-separated fields, per the spec's forward-compat rule.
    """
    if not header:
        return None
    parts = header.strip().split("-")
    if len(parts) < 4:
        return None
    version, trace_id, parent_id, flags = parts[:4]
    if len(version) != 2 or not _is_hex(version) or version == "ff":
        return None
    if version == _VERSION and len(parts) != 4:
        return None  # version 00 has exactly four fields
    if len(trace_id) != 32 or not _is_hex(trace_id) \
            or trace_id == "0" * 32:
        return None
    if len(parent_id) != 16 or not _is_hex(parent_id) \
            or parent_id == "0" * 16:
        return None
    if len(flags) != 2 or not _is_hex(flags):
        return None
    return TraceContext(trace_id=trace_id, parent_id=parent_id,
                        sampled=bool(int(flags, 16) & 0x01))


def inject_context(headers, trace_id: str, pid: int, span_id: int,
                   attempt: int = 0) -> None:
    """Stamp ``traceparent`` + ``tracestate`` onto a Headers object.

    ``set`` (not ``add``): a retried attempt replaces the previous
    attempt's context instead of accumulating duplicates.
    """
    headers.set(TRACEPARENT_HEADER,
                format_traceparent(trace_id, pid, span_id))
    headers.set(TRACESTATE_HEADER, format_tracestate(attempt))


def extract_context(headers) -> Optional[TraceContext]:
    """Parse the remote context off a Headers object (None when absent)."""
    context = parse_traceparent(headers.get(TRACEPARENT_HEADER))
    if context is None:
        return None
    attempt = parse_attempt(headers.get(TRACESTATE_HEADER))
    if attempt is None:
        return context
    return TraceContext(trace_id=context.trace_id,
                        parent_id=context.parent_id,
                        sampled=context.sampled, attempt=attempt)
