"""Declarative SLOs evaluated over the telemetry time series.

An :class:`Objective` states a promise about the serving tier —
"p99 ``http.request_ms`` stays under 250 ms", "at most 5 % of requests
are shed", "the 5xx ratio stays under 1 %" — and :func:`evaluate`
checks it against a :class:`~repro.obs.timeseries.TimeSeriesRecorder`
the way a production burn-rate alert would: over **sliding windows** of
consecutive intervals, not a single end-of-run aggregate.  A run whose
p99 was fine on average but pinned at 10x the objective for four
straight seconds *breaches*; a single noisy interval inside an
otherwise healthy window does not page.

Two objective kinds cover the load-test gate:

- ``latency``: merge the named histogram over each window and compare
  the chosen percentile against ``threshold``.  Burn rate is
  ``measured / threshold`` — "how many times over the objective the
  window ran".
- ``ratio``: ``bad / (bad + good)`` counters summed over each window,
  compared against ``max_ratio``; burn rate ``measured / max_ratio``.
  Windows with no traffic are skipped (no evidence is not a breach).

An objective trips when **any** window's burn rate exceeds
``burn_limit`` (default 1.0 — at the objective).  ``repro loadtest
--slo`` turns the report's verdict into the exit code, which is what
lets CI gate on "the fleet held its latency objective under chaos".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Union

from .metrics import Histogram, MetricsRegistry
from .timeseries import TimeSeriesRecorder

__all__ = ["Objective", "WindowVerdict", "ObjectiveResult", "SloReport",
           "evaluate", "default_loadtest_policy"]


@dataclass(frozen=True)
class Objective:
    """One declarative service-level objective."""

    name: str
    #: "latency" (histogram percentile vs threshold) or "ratio"
    #: (bad/(bad+good) counters vs max_ratio)
    kind: str
    #: latency: histogram metric name (e.g. "http.request_ms")
    metric: str = ""
    #: latency: which percentile to gate (0-100)
    percentile: float = 99.0
    #: latency: objective value, same unit as the metric
    threshold: float = 0.0
    #: ratio: numerator counter (events that consume error budget)
    bad: str = ""
    #: ratio: the "healthy" counter; denominator is bad + good
    good: str = ""
    #: ratio: objective value in [0, 1]
    max_ratio: float = 0.0
    #: sliding-window width, in recorder intervals
    window_intervals: int = 4
    #: trip when any window burns faster than this multiple of the
    #: objective (1.0 = at the objective)
    burn_limit: float = 1.0

    def __post_init__(self):
        if self.kind not in ("latency", "ratio"):
            raise ValueError(f"objective {self.name!r}: unknown kind "
                             f"{self.kind!r}")
        if self.window_intervals < 1:
            raise ValueError(f"objective {self.name!r}: window must be "
                             f">= 1 interval")
        if self.kind == "latency" and (not self.metric
                                       or self.threshold <= 0):
            raise ValueError(f"objective {self.name!r}: latency kind "
                             f"needs metric and threshold > 0")
        if self.kind == "ratio" and (not self.bad or not self.good
                                     or not 0.0 < self.max_ratio <= 1.0):
            raise ValueError(f"objective {self.name!r}: ratio kind needs "
                             f"bad, good, and max_ratio in (0, 1]")


@dataclass(frozen=True)
class WindowVerdict:
    """One sliding window's measurement against an objective."""

    start_index: int
    end_index: int          #: inclusive
    measured: float         #: window percentile, or window ratio
    burn_rate: float        #: measured / objective
    breached: bool


@dataclass
class ObjectiveResult:
    """An objective's verdict over the whole run."""

    objective: Objective
    windows: list[WindowVerdict] = field(default_factory=list)

    @property
    def breached(self) -> bool:
        return any(window.breached for window in self.windows)

    @property
    def worst(self) -> Optional[WindowVerdict]:
        if not self.windows:
            return None
        return max(self.windows, key=lambda w: w.burn_rate)


@dataclass
class SloReport:
    """Every objective's result; ``passed`` drives the exit code."""

    results: list[ObjectiveResult] = field(default_factory=list)
    interval_s: float = 1.0

    @property
    def passed(self) -> bool:
        return not any(result.breached for result in self.results)

    def format(self) -> str:
        lines = ["SLO verdict: " + ("PASS" if self.passed else "BREACH")]
        for result in self.results:
            objective = result.objective
            worst = result.worst
            status = "BREACH" if result.breached else "ok"
            if objective.kind == "latency":
                target = (f"p{objective.percentile:g} {objective.metric} "
                          f"<= {objective.threshold:g}")
            else:
                target = (f"{objective.bad}/({objective.bad}+"
                          f"{objective.good}) <= {objective.max_ratio:g}")
            if worst is None:
                lines.append(f"  [{status:6s}] {objective.name}: {target} "
                             f"— no eligible windows")
                continue
            window_s = objective.window_intervals * self.interval_s
            lines.append(
                f"  [{status:6s}] {objective.name}: {target} — worst "
                f"{window_s:g}s window [{worst.start_index}"
                f"..{worst.end_index}] measured {worst.measured:.4g} "
                f"(burn {worst.burn_rate:.2f}x, limit "
                f"{objective.burn_limit:g}x)")
        return "\n".join(lines)

    def payload(self) -> dict:
        """JSON-safe shape for artifacts and the HTML report."""
        out = {"passed": self.passed, "interval_s": self.interval_s,
               "objectives": []}
        for result in self.results:
            objective = result.objective
            worst = result.worst
            entry = {"name": objective.name, "kind": objective.kind,
                     "breached": result.breached,
                     "window_intervals": objective.window_intervals,
                     "burn_limit": objective.burn_limit,
                     "windows": len(result.windows)}
            if objective.kind == "latency":
                entry.update(metric=objective.metric,
                             percentile=objective.percentile,
                             threshold=objective.threshold)
            else:
                entry.update(bad=objective.bad, good=objective.good,
                             max_ratio=objective.max_ratio)
            if worst is not None:
                entry["worst"] = {"start": worst.start_index,
                                  "end": worst.end_index,
                                  "measured": worst.measured,
                                  "burn_rate": worst.burn_rate}
            out["objectives"].append(entry)
        return out


def _counter_value(bucket: MetricsRegistry, name: str) -> float:
    instrument = bucket.get(name)
    if instrument is None:
        return 0.0
    return float(instrument.snapshot())


def _evaluate_latency(objective: Objective,
                      intervals: Sequence[tuple[int, MetricsRegistry]]
                      ) -> ObjectiveResult:
    result = ObjectiveResult(objective=objective)
    width = objective.window_intervals
    for start in range(0, max(0, len(intervals) - width + 1)):
        window = intervals[start:start + width]
        pooled = Histogram(objective.metric)
        for _, bucket in window:
            instrument = bucket.get(objective.metric)
            if isinstance(instrument, Histogram) and instrument.count:
                pooled.merge(instrument)
        if pooled.count == 0:
            continue  # no traffic in this window: no evidence
        measured = pooled.percentile(objective.percentile)
        burn = measured / objective.threshold
        result.windows.append(WindowVerdict(
            start_index=window[0][0], end_index=window[-1][0],
            measured=measured, burn_rate=burn,
            breached=burn > objective.burn_limit))
    return result


def _evaluate_ratio(objective: Objective,
                    intervals: Sequence[tuple[int, MetricsRegistry]]
                    ) -> ObjectiveResult:
    result = ObjectiveResult(objective=objective)
    width = objective.window_intervals
    for start in range(0, max(0, len(intervals) - width + 1)):
        window = intervals[start:start + width]
        bad = sum(_counter_value(bucket, objective.bad)
                  for _, bucket in window)
        good = sum(_counter_value(bucket, objective.good)
                   for _, bucket in window)
        denominator = bad + good
        if denominator <= 0:
            continue
        measured = bad / denominator
        burn = measured / objective.max_ratio
        result.windows.append(WindowVerdict(
            start_index=window[0][0], end_index=window[-1][0],
            measured=measured, burn_rate=burn,
            breached=burn > objective.burn_limit))
    return result


def evaluate(objectives: Sequence[Objective],
             recorder: Union[TimeSeriesRecorder,
                             Sequence[tuple[int, MetricsRegistry]]]
             ) -> SloReport:
    """Check every objective against the recorded time series.

    Short runs still get a verdict: when fewer intervals exist than an
    objective's window, the whole series is evaluated as one window.
    """
    if isinstance(recorder, TimeSeriesRecorder):
        intervals = recorder.intervals()
        interval_s = recorder.interval_s
    else:
        intervals = list(recorder)
        interval_s = 1.0
    report = SloReport(interval_s=interval_s)
    for objective in objectives:
        width = min(objective.window_intervals,
                    max(1, len(intervals)))
        clamped = objective if width == objective.window_intervals \
            else replace(objective, window_intervals=width)
        if objective.kind == "latency":
            result = _evaluate_latency(clamped, intervals)
        else:
            result = _evaluate_ratio(clamped, intervals)
        result.objective = objective
        report.results.append(result)
    return report


def default_loadtest_policy(p99_ms: float = 250.0,
                            max_shed_rate: float = 0.5,
                            max_error_ratio: float = 0.05,
                            window_intervals: int = 4
                            ) -> list[Objective]:
    """The stock ``repro loadtest --slo`` policy.

    Shedding is *expected* under chaos presets (admission control doing
    its job), so the default shed objective is loose; the latency and
    error objectives are the meaningful gates.  All three are
    overridable from the CLI.
    """
    return [
        Objective(name="latency-p99", kind="latency",
                  metric="http.request_ms", percentile=99.0,
                  threshold=p99_ms, window_intervals=window_intervals),
        Objective(name="shed-rate", kind="ratio",
                  bad="http.shed_503", good="http.requests",
                  max_ratio=max_shed_rate,
                  window_intervals=window_intervals),
        Objective(name="error-ratio", kind="ratio",
                  bad="http.status.5xx", good="http.status.2xx",
                  max_ratio=max_error_ratio,
                  window_intervals=window_intervals),
    ]
