"""A small structured logger for operational output.

Replaces ad-hoc ``print(..., file=sys.stderr)`` status lines with one
consistent, parseable shape::

    repro cli info wrote-artifact path=benchmarks/results/BENCH_PR3.json

Rules of the road:

- *Results* (tables, waterfalls, JSON payloads) are program output and
  stay on stdout via ``print``; the logger carries *status* — progress,
  artifact paths, warnings — on stderr, where it never corrupts piped
  output.
- The threshold comes from ``REPRO_LOG_LEVEL`` (debug/info/warning/
  error/quiet) and can be overridden programmatically
  (:func:`set_level`) — the CLI maps ``--quiet`` onto it.
- Fields are rendered ``key=value`` with shell-safe quoting so logs grep
  and parse trivially; no dependency beyond the stdlib.
"""

from __future__ import annotations

import os
import sys
from typing import Any, Optional, TextIO

__all__ = ["Logger", "get_logger", "set_level", "get_level", "LEVELS"]

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40,
          "quiet": 100}

_level: Optional[int] = None  # resolved lazily from the environment


def _resolve_level() -> int:
    global _level
    if _level is None:
        raw = os.environ.get("REPRO_LOG_LEVEL", "info").strip().lower()
        _level = LEVELS.get(raw, LEVELS["info"])
    return _level


def set_level(level: str) -> None:
    """Set the process-wide threshold ('debug'..'error', or 'quiet')."""
    global _level
    try:
        _level = LEVELS[level.strip().lower()]
    except KeyError:
        raise ValueError(f"unknown log level {level!r}; "
                         f"expected one of {sorted(LEVELS)}")


def get_level() -> str:
    resolved = _resolve_level()
    for name, value in LEVELS.items():
        if value == resolved:
            return name
    return str(resolved)


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        text = f"{value:g}"
    else:
        text = str(value)
    if " " in text or "=" in text or '"' in text or text == "":
        return '"' + text.replace('"', r'\"') + '"'
    return text


class Logger:
    """One named emitter; cheap enough to create per module."""

    __slots__ = ("name", "stream")

    def __init__(self, name: str, stream: Optional[TextIO] = None):
        self.name = name
        #: None = resolve sys.stderr per call (plays well with capsys)
        self.stream = stream

    def _emit(self, level: str, event: str, fields: dict) -> None:
        if LEVELS[level] < _resolve_level():
            return
        parts = [f"repro {self.name} {level} {event}"]
        parts.extend(f"{key}={_format_value(value)}"
                     for key, value in fields.items())
        out = self.stream if self.stream is not None else sys.stderr
        print(" ".join(parts), file=out)

    def debug(self, event: str, **fields: Any) -> None:
        self._emit("debug", event, fields)

    def info(self, event: str, **fields: Any) -> None:
        self._emit("info", event, fields)

    def warning(self, event: str, **fields: Any) -> None:
        self._emit("warning", event, fields)

    def error(self, event: str, **fields: Any) -> None:
        self._emit("error", event, fields)


_loggers: dict[str, Logger] = {}


def get_logger(name: str) -> Logger:
    """Get-or-create the named logger (shared per process)."""
    existing = _loggers.get(name)
    if existing is None:
        existing = _loggers[name] = Logger(name)
    return existing
