"""Trace exporters: Chrome trace-event JSON, JSONL, HAR enrichment.

Three consumers, three shapes:

- :func:`to_chrome_trace` emits the Trace Event Format that Perfetto and
  ``chrome://tracing`` load directly — complete (``"ph": "X"``) events
  for spans, instant (``"ph": "i"``) events for verdicts/faults, and
  thread-name metadata so each layer (browser, netsim, server, Service
  Worker, asyncio HTTP) renders as its own lane.
- :func:`to_jsonl` emits one JSON object per finished span — the
  greppable structured event log.
- :func:`enrich_har` staples ``_traceId``/``_spanId`` onto HAR entries
  so a waterfall viewer and a Perfetto trace of the same load can be
  cross-referenced entry-by-entry.

Timestamps: span times are seconds on the tracer's clock; Chrome events
use integer microseconds.  Both exporters clamp ``dur`` at >= 0 so the
output is always monotonically consistent.
"""

from __future__ import annotations

import json
from typing import Iterable, Union

from .trace import Span, Tracer

__all__ = ["to_chrome_trace", "to_chrome_trace_json", "to_jsonl",
           "enrich_har", "LAYER_LANES"]

#: category -> (tid, lane label); unknown categories land on lane 0
LAYER_LANES = {
    "browser": (1, "browser"),
    "net": (2, "browser net"),
    "netsim": (3, "netsim link"),
    "sw": (4, "service worker"),
    "server": (5, "origin server"),
    "http": (6, "asyncio http"),
}

_PID = 1


def _spans_of(source: Union[Tracer, Iterable[Span]]) -> list[Span]:
    if isinstance(source, Tracer):
        return source.spans()
    return list(source)


def _lane(category: str) -> int:
    entry = LAYER_LANES.get(category)
    return entry[0] if entry is not None else 0


def to_chrome_trace(source: Union[Tracer, Iterable[Span]]) -> dict:
    """Spans -> a Trace Event Format dict (Perfetto-loadable).

    >>> tracer = Tracer(clock=lambda: 0.0, trace_id="t1")
    >>> tracer.add_span("x", "browser", 0.0, 0.5) and None
    >>> to_chrome_trace(tracer)["traceEvents"][-1]["ph"]
    'X'
    """
    events: list[dict] = []
    for tid, label in sorted(set(LAYER_LANES.values())):
        events.append({
            "name": "thread_name", "ph": "M", "pid": _PID, "tid": tid,
            "args": {"name": label},
        })
    for span in _spans_of(source):
        ts = max(0, round(span.start_s * 1e6))
        end_s = span.end_s if span.end_s is not None else span.start_s
        dur = max(0, round(end_s * 1e6) - ts)
        args = {"trace_id": span.trace_id, "span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args.update(span.args)
        event = {
            "name": span.name,
            "cat": span.category or "misc",
            "pid": _PID,
            "tid": _lane(span.category),
            "ts": ts,
            "args": args,
        }
        if dur == 0:
            event["ph"] = "i"
            event["s"] = "t"  # thread-scoped instant
        else:
            event["ph"] = "X"
            event["dur"] = dur
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def to_chrome_trace_json(source: Union[Tracer, Iterable[Span]],
                         indent: int | None = None) -> str:
    return json.dumps(to_chrome_trace(source), indent=indent)


def to_jsonl(source: Union[Tracer, Iterable[Span]]) -> str:
    """One JSON object per span, oldest first (structured event log)."""
    lines = []
    for span in _spans_of(source):
        end_s = span.end_s if span.end_s is not None else span.start_s
        lines.append(json.dumps({
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "name": span.name,
            "category": span.category,
            "start_s": span.start_s,
            "end_s": end_s,
            "duration_s": max(0.0, end_s - span.start_s),
            "args": span.args,
        }, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def enrich_har(har: dict, source: Union[Tracer, Iterable[Span]],
               trace_id: str | None = None) -> dict:
    """Annotate HAR entries with ``_traceId`` (and ``_spanId`` matches).

    Mutates and returns ``har``.  Entries are matched to spans carrying
    a ``url`` arg by URL and closest start time, so a URL fetched twice
    across visits maps each entry to its own span.
    """
    spans = _spans_of(source)
    if trace_id is None:
        trace_id = next((span.trace_id for span in spans), "")
    # Prefer the browser-side fetch span (the one a HAR entry *is*);
    # fall back to any span carrying the URL when none exists.
    fetch_spans = [s for s in spans if s.name == "browser.fetch"]
    by_url: dict[str, list[Span]] = {}
    for span in (fetch_spans or spans):
        url = span.args.get("url")
        if url:
            by_url.setdefault(url, []).append(span)
    for entry in har.get("log", {}).get("entries", []):
        entry["_traceId"] = trace_id
        candidates = by_url.get(entry.get("request", {}).get("url", ""))
        if candidates:
            entry["_spanId"] = min(
                candidates,
                key=lambda span: abs(span.start_s
                                     - _entry_start_s(entry))).span_id
    har.setdefault("log", {})["_traceId"] = trace_id
    return har


def _entry_start_s(entry: dict) -> float:
    """Best-effort sim-seconds of one HAR entry (via ``_startS`` if set)."""
    value = entry.get("_startS")
    return float(value) if isinstance(value, (int, float)) else 0.0
