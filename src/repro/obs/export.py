"""Trace exporters: Chrome trace-event JSON, JSONL, HAR enrichment.

Three consumers, three shapes:

- :func:`to_chrome_trace` emits the Trace Event Format that Perfetto and
  ``chrome://tracing`` load directly — complete (``"ph": "X"``) events
  for spans, instant (``"ph": "i"``) events for verdicts/faults, and
  thread-name metadata so each layer (browser, netsim, server, Service
  Worker, asyncio HTTP) renders as its own lane.
- :func:`to_jsonl` emits one JSON object per finished span — the
  greppable structured event log.
- :func:`enrich_har` staples ``_traceId``/``_spanId`` onto HAR entries
  so a waterfall viewer and a Perfetto trace of the same load can be
  cross-referenced entry-by-entry.

Timestamps: span times are seconds on the tracer's clock; Chrome events
use integer microseconds.  Both exporters clamp ``dur`` at >= 0 so the
output is always monotonically consistent.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional, Union

from .trace import Span, Tracer

__all__ = ["to_chrome_trace", "to_chrome_trace_json", "to_jsonl",
           "enrich_har", "span_to_dict", "namespaced_span_id",
           "LAYER_LANES"]

#: category -> (tid, lane label); unknown categories land on lane 0
LAYER_LANES = {
    "browser": (1, "browser"),
    "net": (2, "browser net"),
    "netsim": (3, "netsim link"),
    "sw": (4, "service worker"),
    "server": (5, "origin server"),
    "http": (6, "asyncio http"),
}

_PID = 1


def span_to_dict(span: Span, pid: Optional[int] = None) -> dict:
    """A :class:`Span` as a portable (pickle/JSON-safe) record.

    This is the shape fleet workers ship over the control pipe: plain
    data, stamped with the worker's ``pid`` so the merged export can
    namespace span IDs (every worker's ring counts from 1).
    """
    end_s = span.end_s if span.end_s is not None else span.start_s
    record = {
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "category": span.category,
        "start_s": span.start_s,
        "end_s": end_s,
        "args": dict(span.args),
    }
    if pid is not None:
        record["pid"] = pid
    remote = getattr(span, "remote_parent", None)
    if remote is not None:
        record["remote_parent"] = [int(remote[0]), int(remote[1])]
    return record


def namespaced_span_id(pid: int, span_id: int) -> int:
    """Globally unique span ID for a (process, local-ID) pair.

    Worker rings restart their counters at 1, so a merged fleet trace
    would alias span 7 of worker A with span 7 of worker B; shifting the
    pid into the high bits keeps IDs unique and still decodable.
    """
    return (int(pid) << 32) | (int(span_id) & 0xFFFFFFFF)


def _spans_of(source: Union[Tracer, Iterable]) -> list[dict]:
    """Normalize Tracer / Span iterable / dict iterable to records.

    Plain :class:`Span` sources carry no ``pid`` and export exactly as
    before (single synthetic process 1, raw IDs); records produced by
    :func:`span_to_dict` with a pid get namespaced IDs and real
    per-process lanes.
    """
    if isinstance(source, Tracer):
        source = source.spans()
    records = []
    for span in source:
        records.append(span if isinstance(span, dict)
                       else span_to_dict(span))
    return records


def _lane(category: str) -> int:
    entry = LAYER_LANES.get(category)
    return entry[0] if entry is not None else 0


def _export_ids(record: dict) -> tuple[int, int, Optional[int]]:
    """(chrome pid, span id, parent id) for one record.

    Records without a pid keep the legacy single-process export — raw
    IDs under synthetic pid 1.  Records with a pid are namespaced, and
    a ``remote_parent`` (a span in another process) wins over the
    local ``parent_id``: that is the causal edge the trace context
    carried across the wire.
    """
    pid = record.get("pid")
    remote = record.get("remote_parent")
    if pid is None:
        parent = record.get("parent_id")
        if parent is None and remote is not None:
            parent = remote[1]
        return _PID, record["span_id"], parent
    span_id = namespaced_span_id(pid, record["span_id"])
    if remote is not None:
        parent = namespaced_span_id(remote[0], remote[1])
    elif record.get("parent_id") is not None:
        parent = namespaced_span_id(pid, record["parent_id"])
    else:
        parent = None
    return pid, span_id, parent


def to_chrome_trace(source: Union[Tracer, Iterable]) -> dict:
    """Spans -> a Trace Event Format dict (Perfetto-loadable).

    Accepts a :class:`Tracer`, an iterable of :class:`Span`, or an
    iterable of :func:`span_to_dict` records (the fleet-merge path,
    possibly spanning several processes).

    >>> tracer = Tracer(clock=lambda: 0.0, trace_id="t1")
    >>> tracer.add_span("x", "browser", 0.0, 0.5) and None
    >>> to_chrome_trace(tracer)["traceEvents"][-1]["ph"]
    'X'
    """
    records = _spans_of(source)
    pids = sorted({record["pid"] for record in records
                   if record.get("pid") is not None})
    legacy = any(record.get("pid") is None for record in records) \
        or not pids
    events: list[dict] = []
    lane_pids = ([_PID] if legacy else []) + pids
    for pid in lane_pids:
        if pid != _PID or not legacy:
            events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": f"pid {pid}"},
            })
        for tid, label in sorted(set(LAYER_LANES.values())):
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": label},
            })
    for record in records:
        ts = max(0, round(record["start_s"] * 1e6))
        end_s = record["end_s"] if record.get("end_s") is not None \
            else record["start_s"]
        dur = max(0, round(end_s * 1e6) - ts)
        pid, span_id, parent_id = _export_ids(record)
        args = {"trace_id": record["trace_id"], "span_id": span_id}
        if parent_id is not None:
            args["parent_id"] = parent_id
        args.update(record.get("args") or {})
        event = {
            "name": record["name"],
            "cat": record["category"] or "misc",
            "pid": pid,
            "tid": _lane(record["category"]),
            "ts": ts,
            "args": args,
        }
        if dur == 0:
            event["ph"] = "i"
            event["s"] = "t"  # thread-scoped instant
        else:
            event["ph"] = "X"
            event["dur"] = dur
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def to_chrome_trace_json(source: Union[Tracer, Iterable[Span]],
                         indent: int | None = None) -> str:
    return json.dumps(to_chrome_trace(source), indent=indent)


def to_jsonl(source: Union[Tracer, Iterable]) -> str:
    """One JSON object per span, oldest first (structured event log)."""
    lines = []
    for record in _spans_of(source):
        end_s = record["end_s"] if record.get("end_s") is not None \
            else record["start_s"]
        line = {
            "trace_id": record["trace_id"],
            "span_id": record["span_id"],
            "parent_id": record.get("parent_id"),
            "name": record["name"],
            "category": record["category"],
            "start_s": record["start_s"],
            "end_s": end_s,
            "duration_s": max(0.0, end_s - record["start_s"]),
            "args": record.get("args") or {},
        }
        if record.get("pid") is not None:
            line["pid"] = record["pid"]
        if record.get("remote_parent") is not None:
            line["remote_parent"] = list(record["remote_parent"])
        lines.append(json.dumps(line, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def enrich_har(har: dict, source: Union[Tracer, Iterable[Span]],
               trace_id: str | None = None) -> dict:
    """Annotate HAR entries with ``_traceId`` (and ``_spanId`` matches).

    Mutates and returns ``har``.  Entries are matched to spans carrying
    a ``url`` arg by URL and closest start time, so a URL fetched twice
    across visits maps each entry to its own span.
    """
    spans = _spans_of(source)
    if trace_id is None:
        trace_id = next((span["trace_id"] for span in spans), "")
    # Prefer the browser-side fetch span (the one a HAR entry *is*);
    # fall back to any span carrying the URL when none exists.
    fetch_spans = [s for s in spans if s["name"] == "browser.fetch"]
    by_url: dict[str, list[dict]] = {}
    for span in (fetch_spans or spans):
        url = (span.get("args") or {}).get("url")
        if url:
            by_url.setdefault(url, []).append(span)
    for entry in har.get("log", {}).get("entries", []):
        entry["_traceId"] = trace_id
        candidates = by_url.get(entry.get("request", {}).get("url", ""))
        if candidates:
            entry["_spanId"] = min(
                candidates,
                key=lambda span: abs(span["start_s"]
                                     - _entry_start_s(entry)))["span_id"]
    har.setdefault("log", {})["_traceId"] = trace_id
    return har


def _entry_start_s(entry: dict) -> float:
    """Best-effort sim-seconds of one HAR entry (via ``_startS`` if set)."""
    value = entry.get("_startS")
    return float(value) if isinstance(value, (int, float)) else 0.0
