"""Span-based tracing for every layer of the reproduction.

The paper's argument is about *where time goes* — revalidation RTTs vs.
cache hits — so the tracer's job is to attribute latency across layers:
which spans of a page load were spent queueing on the connection pool,
serializing bytes through the shared pipe, waiting out a retry backoff,
or answered locally by the Service-Worker cache.

Design constraints, in order:

1. **Zero overhead when off.**  Tracing is disabled by default via
   :data:`NULL_TRACER`, whose ``enabled`` flag lets every
   instrumentation point bail with one attribute read and a branch.  All
   ``begin``/``instant`` calls on the null tracer return the shared
   :data:`NULL_SPAN` singleton — no allocation on the fast path, which
   is what keeps PLT numbers and the server hot-path bench unaffected.
2. **Clock-agnostic.**  The discrete-event stack traces on the *sim*
   clock (``sim.now``); the asyncio stack traces on the wall clock.  A
   tracer takes any zero-arg ``clock`` callable and all timestamps are
   floats in seconds on that axis.
3. **Bounded retention.**  Finished spans land in a ring
   (``collections.deque(maxlen=...)``): a long-lived traced server keeps
   the most recent window instead of growing without bound.
4. **Explicit parents across suspension points.**  Generator processes
   interleave, so an ambient "current span" stack would mis-parent spans
   across ``yield``\\ s.  Instrumented code threads parents explicitly;
   :attr:`Tracer.current_parent` exists only for *synchronous* call
   boundaries (e.g. the fetcher invoking the origin handler inline),
   where no interleaving can occur between set and read.

Propagation: every span carries the tracer's ``trace_id`` plus its own
``span_id`` and its ``parent_id``, so exporters can rebuild the tree and
correlate entries across sim, browser, Service Worker, server, and
asyncio layers.
"""

from __future__ import annotations

import itertools
import os
import time
import uuid
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "NULL_SPAN",
           "DEFAULT_MAX_SPANS"]

#: default finished-span ring capacity
DEFAULT_MAX_SPANS = 65_536


class Span:
    """One timed operation: name, category, [start, end), tree links."""

    __slots__ = ("trace_id", "span_id", "parent_id", "remote_parent",
                 "name", "category", "start_s", "end_s", "args", "_tracer")

    def __init__(self, tracer: "Tracer", trace_id: str, span_id: int,
                 parent_id: Optional[int], name: str, category: str,
                 start_s: float, args: Optional[dict] = None,
                 remote_parent: Optional[tuple] = None):
        self._tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        #: cross-process parent as ``(pid, span_id)`` — set when a W3C
        #: trace context arrived over the wire (see obs/tracecontext.py)
        self.remote_parent = remote_parent
        self.name = name
        self.category = category
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.args: dict = args if args is not None else {}

    # -- annotation ---------------------------------------------------------
    def set(self, key: str, value: Any) -> "Span":
        """Attach one key/value annotation (chainable)."""
        self.args[key] = value
        return self

    def annotate(self, **kv: Any) -> "Span":
        self.args.update(kv)
        return self

    # -- lifecycle ----------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.end_s is not None

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def end(self, at: Optional[float] = None) -> "Span":
        """Finish the span (idempotent) and retain it in the ring."""
        if self.end_s is None:
            self._tracer._finish(self, at)
        return self

    # Wall-clock instrumentation reads nicely as a context manager; the
    # DES stack must not use this across yields (end explicitly instead).
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        if exc is not None:
            self.args.setdefault("error", type(exc).__name__)
        self.end()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration_s * 1000:.3f}ms" if self.finished \
            else "open"
        return (f"<Span {self.name!r} cat={self.category!r} "
                f"id={self.span_id} parent={self.parent_id} {state}>")


class _NullSpan:
    """The do-nothing span every disabled instrumentation point shares."""

    __slots__ = ()

    trace_id = ""
    span_id = 0
    parent_id = None
    remote_parent = None
    name = ""
    category = ""
    start_s = 0.0
    end_s = 0.0
    finished = True
    duration_s = 0.0

    @property
    def args(self) -> dict:
        return {}

    def set(self, key: str, value: Any) -> "_NullSpan":
        return self

    def annotate(self, **kv: Any) -> "_NullSpan":
        return self

    def end(self, at: Optional[float] = None) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def __bool__(self) -> bool:
        return False


#: the singleton no-op span — identity-testable in overhead tests
NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans on one clock into one bounded trace.

    ``clock`` is any zero-arg callable returning seconds; rebind it with
    :meth:`bind_clock` when the time source is created later than the
    tracer (e.g. a :class:`~repro.netsim.sim.Simulator` built inside
    ``run_visit_sequence``).
    """

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 max_spans: int = DEFAULT_MAX_SPANS,
                 trace_id: Optional[str] = None):
        self.clock: Callable[[], float] = clock or time.monotonic
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        #: the process this tracer records in — span IDs are only unique
        #: per tracer, so cross-process exports namespace by (pid, id)
        self.pid = os.getpid()
        self._ids = itertools.count(1)
        self._finished: deque[Span] = deque(maxlen=max_spans)
        #: spans begun this run, finished or not (drops with the ring)
        self.spans_started = 0
        #: synchronous-call parent hand-off; never valid across a yield
        self.current_parent: Optional[Span] = None

    def bind_clock(self, clock: Callable[[], float]) -> "Tracer":
        self.clock = clock
        return self

    # -- span creation ------------------------------------------------------
    def begin(self, name: str, category: str = "",
              parent: Optional[Span] = None,
              args: Optional[dict] = None,
              at: Optional[float] = None,
              remote_parent: Optional[tuple] = None) -> Span:
        """Open a span at ``at`` (default: now on the tracer's clock).

        ``remote_parent`` is a ``(pid, span_id)`` pair naming a parent
        span in *another process* (decoded from a ``traceparent``
        header); it takes precedence over ``parent`` in exports.
        """
        self.spans_started += 1
        parent_id = parent.span_id if parent is not None and parent else None
        return Span(self, self.trace_id, next(self._ids), parent_id,
                    name, category,
                    self.clock() if at is None else at, args,
                    remote_parent=remote_parent)

    def instant(self, name: str, category: str = "",
                parent: Optional[Span] = None,
                args: Optional[dict] = None,
                at: Optional[float] = None) -> Span:
        """A zero-duration event (cache verdicts, retries, faults)."""
        span = self.begin(name, category, parent=parent, args=args, at=at)
        span.end(at=span.start_s)
        return span

    def add_span(self, name: str, category: str, start_s: float,
                 end_s: float, parent: Optional[Span] = None,
                 args: Optional[dict] = None) -> Span:
        """Record an already-measured interval with explicit times."""
        span = self.begin(name, category, parent=parent, args=args,
                          at=start_s)
        span.end(at=max(end_s, start_s))
        return span

    def _finish(self, span: Span, at: Optional[float]) -> None:
        span.end_s = self.clock() if at is None else at
        if span.end_s < span.start_s:
            span.end_s = span.start_s
        self._finished.append(span)

    # -- synchronous parent hand-off ---------------------------------------
    @contextmanager
    def parenting(self, span: Optional[Span]) -> Iterator[None]:
        """Make ``span`` the ambient parent for a *synchronous* call.

        Safe only when no simulator yield / await happens inside the
        ``with`` body — the whole point is handing a parent across a
        plain function-call boundary (fetcher -> origin handler).
        """
        previous = self.current_parent
        self.current_parent = span if span else None
        try:
            yield
        finally:
            self.current_parent = previous

    # -- access -------------------------------------------------------------
    def spans(self) -> list[Span]:
        """Finished spans, oldest first (bounded by the ring)."""
        return list(self._finished)

    def spans_named(self, name: str) -> list[Span]:
        return [span for span in self._finished if span.name == name]

    def categories(self) -> set[str]:
        return {span.category for span in self._finished}

    def clear(self) -> None:
        self._finished.clear()
        self.spans_started = 0

    def __len__(self) -> int:
        return len(self._finished)

    def summary(self) -> dict:
        """Machine-readable one-glance state (feeds the stats endpoint)."""
        return {
            "trace_id": self.trace_id,
            "enabled": self.enabled,
            "spans_started": self.spans_started,
            "spans_retained": len(self._finished),
            "categories": sorted(self.categories()),
        }


class NullTracer:
    """The disabled tracer: every operation is a cheap no-op.

    Instrumentation points guard allocation with ``tracer.enabled``; any
    call that slips through still costs nothing and returns
    :data:`NULL_SPAN`.
    """

    enabled = False
    trace_id = ""
    pid = 0
    current_parent = None
    spans_started = 0

    def bind_clock(self, clock: Callable[[], float]) -> "NullTracer":
        return self

    def begin(self, name: str, category: str = "", parent=None,
              args=None, at=None, remote_parent=None) -> _NullSpan:
        return NULL_SPAN

    def instant(self, name: str, category: str = "", parent=None,
                args=None, at=None) -> _NullSpan:
        return NULL_SPAN

    def add_span(self, name: str, category: str, start_s: float,
                 end_s: float, parent=None, args=None) -> _NullSpan:
        return NULL_SPAN

    @contextmanager
    def parenting(self, span) -> Iterator[None]:
        yield

    def spans(self) -> list:
        return []

    def spans_named(self, name: str) -> list:
        return []

    def categories(self) -> set:
        return set()

    def clear(self) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def summary(self) -> dict:
        return {"trace_id": "", "enabled": False, "spans_started": 0,
                "spans_retained": 0, "categories": []}


#: the shared default — tracing is off unless somebody installs a Tracer
NULL_TRACER = NullTracer()
