"""Span self-time profiling and flamegraph export.

The tracer answers "what happened, when"; this module answers "where
did the time actually go".  *Self time* is a span's duration minus the
time covered by its direct children — the share of a ``page.load`` that
was genuinely the browser's, rather than nested network attempts or
server handling.  Computed entirely from the finished-span ring, after
the run: profiling a deterministic DES run perturbs nothing (the paired
test in ``tests/integration/test_observability.py`` proves PLTs stay
byte-identical).

Two export shapes:

- :func:`self_times` — per ``(category, name)`` totals, the basis for
  the CLI's "where did the milliseconds go" table
  (:func:`format_self_times`).
- :func:`collapsed_stacks` — Brendan Gregg's collapsed-stack format
  (one ``root;child;leaf <weight>`` line per unique path, weights in
  integer microseconds of self time), loadable by speedscope
  (https://speedscope.app), inferno, and ``flamegraph.pl``.  Written by
  ``python -m repro trace --flame-out``.

Spans whose parent fell out of the bounded ring are treated as roots;
open (unfinished) spans are skipped.  Time is whatever clock the tracer
ran on — simulated seconds for DES traces, wall seconds for asyncio.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple, Union

from .trace import Span, Tracer

__all__ = ["self_times", "collapsed_stacks", "to_collapsed",
           "format_self_times"]

SpanSource = Union[Tracer, Iterable[Span]]


def _finished_spans(source: SpanSource) -> List[Span]:
    spans = source.spans() if isinstance(source, Tracer) else list(source)
    return [span for span in spans if span.finished]


def _child_time(span: Span, children: List[Span]) -> float:
    """Time within ``span`` covered by its direct children.

    Children of one parent may themselves overlap (concurrent fetches
    under one ``page.load``), so intervals are merged before summing —
    self time must never go negative just because two children ran at
    the same simulated instant.
    """
    intervals = []
    for child in children:
        start = max(child.start_s, span.start_s)
        end = min(child.end_s, span.end_s)
        if end > start:
            intervals.append((start, end))
    if not intervals:
        return 0.0
    intervals.sort()
    covered = 0.0
    cur_start, cur_end = intervals[0]
    for start, end in intervals[1:]:
        if start > cur_end:
            covered += cur_end - cur_start
            cur_start, cur_end = start, end
        else:
            cur_end = max(cur_end, end)
    covered += cur_end - cur_start
    return covered


def _self_time_of(spans: List[Span]) -> Dict[int, float]:
    """span_id -> self seconds for every finished span."""
    by_parent: Dict[int, List[Span]] = {}
    known = {span.span_id for span in spans}
    for span in spans:
        if span.parent_id is not None and span.parent_id in known:
            by_parent.setdefault(span.parent_id, []).append(span)
    out: Dict[int, float] = {}
    for span in spans:
        children = by_parent.get(span.span_id, [])
        out[span.span_id] = max(
            0.0, span.duration_s - _child_time(span, children))
    return out


def self_times(source: SpanSource) -> Dict[Tuple[str, str], dict]:
    """Per ``(category, name)``: exclusive-time totals over the ring.

    Returns ``{(category, name): {"self_s", "total_s", "count"}}``,
    where ``total_s`` is inclusive (with-children) time.
    """
    spans = _finished_spans(source)
    per_span = _self_time_of(spans)
    out: Dict[Tuple[str, str], dict] = {}
    for span in spans:
        entry = out.setdefault((span.category, span.name),
                               {"self_s": 0.0, "total_s": 0.0, "count": 0})
        entry["self_s"] += per_span[span.span_id]
        entry["total_s"] += span.duration_s
        entry["count"] += 1
    return out


def _frame(span: Span) -> str:
    """One stack-frame label; collapsed format reserves ';' and ' '."""
    label = f"{span.category}:{span.name}" if span.category else span.name
    return label.replace(";", ",").replace(" ", "_")


def collapsed_stacks(source: SpanSource,
                     scale: float = 1e6) -> Dict[str, int]:
    """Unique root->leaf paths weighted by integer self time.

    ``scale`` converts clock seconds to the emitted unit (default
    microseconds).  Zero-weight paths (instants, fully-covered parents)
    are dropped — they carry no area on a flamegraph.
    """
    spans = _finished_spans(source)
    per_span = _self_time_of(spans)
    by_id = {span.span_id: span for span in spans}
    stacks: Dict[str, int] = {}
    for span in spans:
        weight = round(per_span[span.span_id] * scale)
        if weight <= 0:
            continue
        frames = [_frame(span)]
        seen = {span.span_id}
        parent_id = span.parent_id
        while parent_id is not None and parent_id in by_id \
                and parent_id not in seen:
            parent = by_id[parent_id]
            frames.append(_frame(parent))
            seen.add(parent_id)
            parent_id = parent.parent_id
        path = ";".join(reversed(frames))
        stacks[path] = stacks.get(path, 0) + weight
    return stacks


def to_collapsed(source: SpanSource, scale: float = 1e6) -> str:
    """The collapsed-stack file: one ``path weight`` line, sorted."""
    stacks = collapsed_stacks(source, scale=scale)
    lines = [f"{path} {weight}" for path, weight in sorted(stacks.items())]
    return "\n".join(lines) + ("\n" if lines else "")


def format_self_times(source: SpanSource, top: int = 12) -> str:
    """Human table of the heaviest ``(category, name)`` self times."""
    totals = self_times(source)
    entries = sorted(totals.items(),
                     key=lambda item: -item[1]["self_s"])[:top]
    if not entries:
        return "(no finished spans)"
    total_self = sum(entry["self_s"] for entry in totals.values()) or 1.0
    width = max(len(f"{category}:{name}")
                for (category, name), _ in entries)
    lines = [f"{'span':<{width}}  {'self ms':>10}  {'total ms':>10}  "
             f"{'count':>6}  share"]
    for (category, name), entry in entries:
        label = f"{category}:{name}"
        lines.append(
            f"{label:<{width}}  {entry['self_s'] * 1e3:>10.2f}  "
            f"{entry['total_s'] * 1e3:>10.2f}  {entry['count']:>6}  "
            f"{entry['self_s'] / total_self:>5.1%}")
    return "\n".join(lines)
