"""Interval-bucketed telemetry: registry deltas over time.

The fleet's metrics story before this module was post-hoc: each worker's
:class:`MetricsRegistry` merged into one aggregate *after* the run, so a
load test could tell you its overall p99 but not that the p99 was fine
for 28 seconds and catastrophic for 2.  This module adds the time axis.

Workers periodically :func:`diff_dumps` their registry against the
previous dump and ship only the **delta** — counter increments,
histogram increments (count/sum plus a bucket-wise sketch difference so
per-interval percentiles stay sketch-accurate), gauge spot values —
over the existing fleet control pipe.  The parent feeds deltas into a
:class:`TimeSeriesRecorder`, which buckets them onto a fixed interval
grid (merging same-interval deltas from different workers through the
ordinary ``MetricsRegistry.merge`` path: counters add, gauges sum
across workers — per-worker inflight sums to fleet inflight), streams
every record to JSONL on disk, and serves zero-filled interval series
to the SLO evaluator and the ``--live`` ticker.

Because deltas merge through the same machinery as full dumps, the sum
of all interval buckets reconciles with the final merged registry:
exactly for counters and histogram count/sum, within sketch error for
percentiles (interval sketch differences can lose per-bucket precision
only if a sketch collapsed mid-run, which the 2048-bucket cap makes
vanishingly rare for latency-scale data).
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Mapping, Optional, Sequence

from .metrics import MetricsRegistry

__all__ = ["diff_dumps", "diff_sketch_states", "TimeSeriesRecorder",
           "read_timeseries_jsonl"]


def diff_sketch_states(current: Mapping, previous: Optional[Mapping]
                       ) -> dict:
    """Bucket-wise difference of two :meth:`LogHistogram.to_dict` states.

    The result is itself a valid sketch state describing only the
    samples observed between the two dumps.  ``min``/``max`` carry the
    *current* all-time bounds (bounds cannot be subtracted); estimates
    clamp to them, which only widens the admissible range, so interval
    percentiles keep the sketch's error bound.
    """
    if previous is None:
        return dict(current)
    count = int(current["count"]) - int(previous["count"])
    zero_count = int(current["zero_count"]) - int(previous["zero_count"])
    total = float(current["total"]) - float(previous["total"])
    prev_buckets = previous["buckets"]
    buckets = {}
    for index, n in current["buckets"].items():
        delta = int(n) - int(prev_buckets.get(index, 0))
        if delta > 0:
            buckets[index] = delta
        # delta < 0 only after a mid-run collapse shuffled counts
        # between buckets; clamping keeps the state well-formed (the
        # exact count field above is authoritative for ranks)
    state = {"relative_error": current["relative_error"],
             "min_trackable": current["min_trackable"],
             "count": max(count, 0),
             "zero_count": max(zero_count, 0),
             "total": total,
             "min": current["min"], "max": current["max"],
             "buckets": buckets}
    if current.get("max_buckets") is not None:
        state["max_buckets"] = current["max_buckets"]
    return state


def _diff_histogram(state: Mapping, previous: Optional[Mapping]) -> dict:
    if previous is None:
        return dict(state)
    delta = {"kind": "histogram",
             "count": int(state["count"]) - int(previous["count"]),
             "total": float(state["total"]) - float(previous["total"]),
             # raw rings cannot be diffed (overwrites are invisible);
             # interval percentiles come from the sketch delta instead
             "samples": [],
             "sketch": diff_sketch_states(state["sketch"],
                                          previous["sketch"])}
    if state.get("max_samples") is not None:
        delta["max_samples"] = state["max_samples"]
    return delta


def diff_dumps(current: Mapping[str, Mapping],
               previous: Mapping[str, Mapping]) -> dict:
    """The delta between two :meth:`MetricsRegistry.dump` snapshots.

    Counters carry their increment (omitted when zero), histograms
    their count/sum/sketch increments (omitted when no new samples),
    gauges their current spot value (always present once nonzero —
    a gauge is a level, not a flow).  The result is a valid dump:
    feeding every delta through ``MetricsRegistry.merge`` reconstructs
    the counters and histogram count/sum exactly.
    """
    delta: dict = {}
    for name, state in current.items():
        kind = state.get("kind")
        prev = previous.get(name)
        if kind == "counter":
            increment = state["value"] - (prev["value"] if prev else 0)
            if increment:
                delta[name] = {"kind": "counter", "value": increment}
        elif kind == "gauge":
            delta[name] = {"kind": "gauge", "value": state["value"]}
        elif kind == "histogram":
            if prev is not None and state["count"] == prev["count"]:
                continue
            delta[name] = _diff_histogram(state, prev)
    return delta


class TimeSeriesRecorder:
    """Interval-bucketed sink for telemetry deltas.

    ``record(delta, t_s, source)`` merges the delta into the bucket for
    ``int(t_s / interval_s)`` and appends one JSONL line to ``path``
    (when given) so the raw stream survives the process.  Buckets are
    plain :class:`MetricsRegistry` instances — every question you can
    ask the final registry you can ask per interval.
    """

    def __init__(self, interval_s: float = 1.0,
                 path: Optional[str] = None):
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.interval_s = interval_s
        self.path = path
        self._buckets: dict[int, MetricsRegistry] = {}
        self._sources: set = set()
        self._file: Optional[IO[str]] = None
        if path is not None:
            self._file = open(path, "w", encoding="utf-8")

    # -- recording -----------------------------------------------------------
    def record(self, delta: Mapping[str, Mapping], t_s: float,
               source: Optional[object] = None) -> int:
        """Merge one delta; returns the interval index it landed in."""
        index = max(0, int(t_s / self.interval_s))
        bucket = self._buckets.setdefault(index, MetricsRegistry())
        bucket.merge(delta)
        if source is not None:
            self._sources.add(source)
        if self._file is not None:
            json.dump({"interval": index, "t_s": round(t_s, 6),
                       "source": source, "delta": delta}, self._file,
                      separators=(",", ":"))
            self._file.write("\n")
            self._file.flush()
        return index

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "TimeSeriesRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reading -------------------------------------------------------------
    @property
    def sources(self) -> set:
        """Distinct telemetry sources seen (worker pids, usually)."""
        return set(self._sources)

    def intervals(self) -> list[tuple[int, MetricsRegistry]]:
        """Zero-filled ``(index, bucket)`` pairs from 0 to the last index.

        Empty intervals appear as empty registries — a stall gap is a
        row of zeros, not a hole (the same fix `_Tallies.series()` got).
        """
        if not self._buckets:
            return []
        last = max(self._buckets)
        return [(index, self._buckets.get(index, MetricsRegistry()))
                for index in range(0, last + 1)]

    def totals(self) -> MetricsRegistry:
        """All intervals folded together.

        Counters and histograms merge through the normal path (so they
        reconcile with the final live registry); gauges take their
        value from the *latest* interval mentioning them — summing a
        level across time would be meaningless.
        """
        merged = MetricsRegistry()
        latest_gauges: dict[str, float] = {}
        for _, bucket in sorted(self._buckets.items()):
            dump = bucket.dump()
            flows = {name: state for name, state in dump.items()
                     if state.get("kind") != "gauge"}
            merged.merge(flows)
            for name, state in dump.items():
                if state.get("kind") == "gauge":
                    latest_gauges[name] = state["value"]
        for name, value in latest_gauges.items():
            merged.gauge(name).set(value)
        return merged

    def series(self, metric: str, field: str = "count") -> list[float]:
        """One numeric series over the zero-filled interval grid.

        ``field`` is a key of the instrument's ``snapshot()`` for
        histograms (``count``, ``mean``, ``p99``, ...); counters and
        gauges ignore it and yield their value.
        """
        values: list[float] = []
        for _, bucket in self.intervals():
            instrument = bucket.get(metric)
            if instrument is None:
                values.append(0.0)
                continue
            snap = instrument.snapshot()
            if isinstance(snap, dict):
                values.append(float(snap.get(field, 0.0)))
            else:
                values.append(float(snap))
        return values

    def interval_snapshots(self) -> list[dict]:
        """JSON-safe per-interval snapshots (report/timeline fodder)."""
        return [{"t_s": round(index * self.interval_s, 6),
                 "metrics": bucket.snapshot()}
                for index, bucket in self.intervals()]


def read_timeseries_jsonl(path: str, interval_s: float = 1.0
                          ) -> TimeSeriesRecorder:
    """Rebuild a recorder from its on-disk JSONL stream."""
    recorder = TimeSeriesRecorder(interval_s=interval_s)
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            recorder.record(record["delta"], record["t_s"],
                            source=record.get("source"))
    return recorder
