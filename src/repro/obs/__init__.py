"""repro.obs — the unified observability spine.

One subsystem, three capabilities, zero dependencies:

- **Tracing** (:mod:`repro.obs.trace`): :class:`Tracer`/:class:`Span`
  with trace-/parent-ID propagation, sim- or wall-clock timestamps, and
  ring-buffered retention.  Disabled by default through
  :data:`NULL_TRACER`'s no-op fast path, so the hot paths this package
  benchmarks are unaffected until a trace is explicitly requested.
- **Metrics** (:mod:`repro.obs.metrics`): a named-series registry
  (counters / gauges / histograms) generalizing
  :class:`repro.perf.PerfCounters` so any layer can register series
  without new plumbing.
- **Exporters** (:mod:`repro.obs.export`): Chrome trace-event JSON
  (Perfetto / ``chrome://tracing``), JSONL structured event logs, and
  HAR enrichment (``_traceId`` per entry).

Plus :mod:`repro.obs.log`, the structured stderr logger behind the CLI's
``--quiet`` and ``REPRO_LOG_LEVEL``.
"""

from .export import enrich_har, to_chrome_trace, to_chrome_trace_json, \
    to_jsonl
from .log import Logger, get_logger, set_level
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      registry)
from .trace import (DEFAULT_MAX_SPANS, NULL_SPAN, NULL_TRACER, NullTracer,
                    Span, Tracer)

__all__ = [
    "Tracer", "Span", "NullTracer", "NULL_TRACER", "NULL_SPAN",
    "DEFAULT_MAX_SPANS",
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "registry",
    "to_chrome_trace", "to_chrome_trace_json", "to_jsonl", "enrich_har",
    "Logger", "get_logger", "set_level",
]
