"""repro.obs — the unified observability spine.

One subsystem, three capabilities, zero dependencies:

- **Tracing** (:mod:`repro.obs.trace`): :class:`Tracer`/:class:`Span`
  with trace-/parent-ID propagation, sim- or wall-clock timestamps, and
  ring-buffered retention.  Disabled by default through
  :data:`NULL_TRACER`'s no-op fast path, so the hot paths this package
  benchmarks are unaffected until a trace is explicitly requested.
- **Metrics** (:mod:`repro.obs.metrics`): a named-series registry
  (counters / gauges / histograms) generalizing
  :class:`repro.perf.PerfCounters` so any layer can register series
  without new plumbing.
- **Exporters** (:mod:`repro.obs.export`): Chrome trace-event JSON
  (Perfetto / ``chrome://tracing``), JSONL structured event logs, and
  HAR enrichment (``_traceId`` per entry).

Fleet-scale additions:

- **Sketches** (:mod:`repro.obs.sketch`): :class:`LogHistogram`, a
  fixed-memory log-bucketed quantile sketch with bounded relative
  error whose ``merge()`` is lossless — the registry's histograms ride
  on it, and worker-pool registries merge back into one fleet view.
- **Profiling** (:mod:`repro.obs.profile`): per-span *self time*
  (exclusive of children) computed from the tracer ring, exported as
  collapsed-stack flamegraphs (``repro trace --flame-out``).
- **Manifests** (:mod:`repro.obs.manifest`): provenance stamps
  (config, seeds, git rev, interpreter, workers, wall time) for every
  ``BENCH_*.json`` artifact; the bench-compare gate validates them and
  refuses cross-config comparisons.

Cross-process telemetry (the distributed-tracing PR):

- **Trace context** (:mod:`repro.obs.tracecontext`): W3C
  ``traceparent``/``tracestate`` encode/parse, carrying (pid, span-id)
  identities across the asyncio client/fleet boundary so one Perfetto
  trace shows a client retry parenting the worker that served it.
- **Time series** (:mod:`repro.obs.timeseries`): interval-bucketed
  recorder fed by periodic registry *delta* dumps streamed off fleet
  workers — JSONL on disk, sketch-backed per-interval percentiles.
- **Exposition** (:mod:`repro.obs.promtext`): Prometheus text-format
  rendering of any registry (``/__repro/metrics``), plus the minimal
  parser CI uses to validate it.
- **SLOs** (:mod:`repro.obs.slo`): declarative objectives (latency
  percentiles, shed/error ratios) evaluated over the time series with
  sliding burn-rate windows; drives ``repro loadtest --slo``.

Plus :mod:`repro.obs.log`, the structured stderr logger behind the CLI's
``--quiet`` and ``REPRO_LOG_LEVEL``.
"""

from .export import (enrich_har, namespaced_span_id, span_to_dict,
                     to_chrome_trace, to_chrome_trace_json, to_jsonl)
from .log import Logger, get_logger, set_level
from .manifest import (build_manifest, comparable, stamp,
                       validate_manifest)
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      registry)
from .profile import (collapsed_stacks, format_self_times, self_times,
                      to_collapsed)
from .promtext import (parse_prometheus_text, to_prometheus_text)
from .sketch import LogHistogram
from .slo import Objective, SloReport, default_loadtest_policy
from .slo import evaluate as evaluate_slo
from .timeseries import TimeSeriesRecorder, diff_dumps
from .trace import (DEFAULT_MAX_SPANS, NULL_SPAN, NULL_TRACER, NullTracer,
                    Span, Tracer)
from .tracecontext import (TraceContext, extract_context, inject_context,
                           parse_traceparent)

__all__ = [
    "Tracer", "Span", "NullTracer", "NULL_TRACER", "NULL_SPAN",
    "DEFAULT_MAX_SPANS",
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "registry",
    "LogHistogram",
    "self_times", "collapsed_stacks", "to_collapsed", "format_self_times",
    "build_manifest", "stamp", "validate_manifest", "comparable",
    "to_chrome_trace", "to_chrome_trace_json", "to_jsonl", "enrich_har",
    "span_to_dict", "namespaced_span_id",
    "TraceContext", "parse_traceparent", "inject_context",
    "extract_context",
    "TimeSeriesRecorder", "diff_dumps",
    "to_prometheus_text", "parse_prometheus_text",
    "Objective", "SloReport", "evaluate_slo", "default_loadtest_policy",
    "Logger", "get_logger", "set_level",
]
