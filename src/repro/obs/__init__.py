"""repro.obs — the unified observability spine.

One subsystem, three capabilities, zero dependencies:

- **Tracing** (:mod:`repro.obs.trace`): :class:`Tracer`/:class:`Span`
  with trace-/parent-ID propagation, sim- or wall-clock timestamps, and
  ring-buffered retention.  Disabled by default through
  :data:`NULL_TRACER`'s no-op fast path, so the hot paths this package
  benchmarks are unaffected until a trace is explicitly requested.
- **Metrics** (:mod:`repro.obs.metrics`): a named-series registry
  (counters / gauges / histograms) generalizing
  :class:`repro.perf.PerfCounters` so any layer can register series
  without new plumbing.
- **Exporters** (:mod:`repro.obs.export`): Chrome trace-event JSON
  (Perfetto / ``chrome://tracing``), JSONL structured event logs, and
  HAR enrichment (``_traceId`` per entry).

Fleet-scale additions:

- **Sketches** (:mod:`repro.obs.sketch`): :class:`LogHistogram`, a
  fixed-memory log-bucketed quantile sketch with bounded relative
  error whose ``merge()`` is lossless — the registry's histograms ride
  on it, and worker-pool registries merge back into one fleet view.
- **Profiling** (:mod:`repro.obs.profile`): per-span *self time*
  (exclusive of children) computed from the tracer ring, exported as
  collapsed-stack flamegraphs (``repro trace --flame-out``).
- **Manifests** (:mod:`repro.obs.manifest`): provenance stamps
  (config, seeds, git rev, interpreter, workers, wall time) for every
  ``BENCH_*.json`` artifact; the bench-compare gate validates them and
  refuses cross-config comparisons.

Plus :mod:`repro.obs.log`, the structured stderr logger behind the CLI's
``--quiet`` and ``REPRO_LOG_LEVEL``.
"""

from .export import enrich_har, to_chrome_trace, to_chrome_trace_json, \
    to_jsonl
from .log import Logger, get_logger, set_level
from .manifest import (build_manifest, comparable, stamp,
                       validate_manifest)
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      registry)
from .profile import (collapsed_stacks, format_self_times, self_times,
                      to_collapsed)
from .sketch import LogHistogram
from .trace import (DEFAULT_MAX_SPANS, NULL_SPAN, NULL_TRACER, NullTracer,
                    Span, Tracer)

__all__ = [
    "Tracer", "Span", "NullTracer", "NULL_TRACER", "NULL_SPAN",
    "DEFAULT_MAX_SPANS",
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "registry",
    "LogHistogram",
    "self_times", "collapsed_stacks", "to_collapsed", "format_self_times",
    "build_manifest", "stamp", "validate_manifest", "comparable",
    "to_chrome_trace", "to_chrome_trace_json", "to_jsonl", "enrich_har",
    "Logger", "get_logger", "set_level",
]
