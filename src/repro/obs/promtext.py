"""Prometheus text exposition for a :class:`MetricsRegistry`.

Renders the registry in the Prometheus text format, version 0.0.4
(https://prometheus.io/docs/instrumenting/exposition_formats/) so a
stock Prometheus — or anything speaking its scrape protocol — can point
at the serving tier's ``/__repro/metrics`` endpoint with zero adapters:

- counters become ``<ns>_<name>_total`` with ``# TYPE ... counter``,
- gauges become ``<ns>_<name>`` with ``# TYPE ... gauge``,
- histograms are exposed as **summaries**: ``{quantile="0.5|0.9|0.99"}``
  series straight off the two-tier histogram's exact-ring/sketch
  percentiles, plus the ``_count`` / ``_sum`` pair.  A summary (not a
  Prometheus histogram) because the sketch's log buckets do not map to
  the fixed ``le`` buckets the histogram type requires, and quantiles
  are what the SLO layer gates on anyway.

Metric names are sanitized to the exposition alphabet
(``[a-zA-Z_:][a-zA-Z0-9_:]*``): the registry's dotted names
(``http.request_ms``) become underscore-joined, namespaced series
(``repro_http_request_ms``).  Values use ``repr``-style shortest float
formatting, with ``+Inf``/``-Inf``/``NaN`` spelled the way the format
demands.

:func:`parse_prometheus_text` is the matching minimal parser — enough
to validate an exposition end-to-end in CI without a Prometheus binary,
and to let tests assert "the scraped totals equal the merged registry
dump" as numbers instead of strings.
"""

from __future__ import annotations

import math
import re
from typing import Mapping, Optional, Union

from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["to_prometheus_text", "parse_prometheus_text", "scrape_value",
           "sanitize_metric_name", "CONTENT_TYPE", "DEFAULT_NAMESPACE",
           "SUMMARY_QUANTILES"]

#: the scrape Content-Type Prometheus expects for this format
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: prefix applied to every exposed series
DEFAULT_NAMESPACE = "repro"

#: quantiles exposed per histogram (matches the stats endpoint's set)
SUMMARY_QUANTILES = (0.5, 0.9, 0.99)

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$")

_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def sanitize_metric_name(name: str, namespace: str = DEFAULT_NAMESPACE
                         ) -> str:
    """Dotted registry name -> legal, namespaced exposition name."""
    flat = _INVALID_CHARS.sub("_", name)
    if namespace:
        flat = f"{namespace}_{flat}"
    if not flat or not (flat[0].isalpha() or flat[0] in "_:"):
        flat = f"_{flat}"
    return flat


def _format_value(value: float) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value.is_integer() and abs(value) < 1e15:
            return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def to_prometheus_text(source: Union[MetricsRegistry, Mapping[str, Mapping]],
                       namespace: str = DEFAULT_NAMESPACE) -> str:
    """Render a registry (or a :meth:`MetricsRegistry.dump`) as 0.0.4 text.

    Accepting dumps too means the fleet parent can expose *merged*
    worker telemetry without reconstructing live instruments first.
    """
    if not isinstance(source, MetricsRegistry):
        source = MetricsRegistry().merge(source)
    lines: list[str] = []
    for instrument in sorted(source, key=lambda i: i.name):
        exposed = sanitize_metric_name(instrument.name, namespace)
        help_text = _escape_help(f"repro metric {instrument.name}")
        if isinstance(instrument, Counter):
            lines.append(f"# HELP {exposed}_total {help_text}")
            lines.append(f"# TYPE {exposed}_total counter")
            lines.append(f"{exposed}_total "
                         f"{_format_value(instrument.value)}")
        elif isinstance(instrument, Gauge):
            lines.append(f"# HELP {exposed} {help_text}")
            lines.append(f"# TYPE {exposed} gauge")
            lines.append(f"{exposed} {_format_value(instrument.value)}")
        elif isinstance(instrument, Histogram):
            lines.append(f"# HELP {exposed} {help_text}")
            lines.append(f"# TYPE {exposed} summary")
            for q in SUMMARY_QUANTILES:
                estimate = instrument.percentile(q * 100.0)
                lines.append(f'{exposed}{{quantile="{_format_value(q)}"}} '
                             f"{_format_value(estimate)}")
            lines.append(f"{exposed}_sum "
                         f"{_format_value(instrument.total)}")
            lines.append(f"{exposed}_count {instrument.count}")
    return "\n".join(lines) + "\n" if lines else ""


def _parse_number(text: str) -> float:
    lowered = text.lower()
    if lowered in ("+inf", "inf"):
        return math.inf
    if lowered == "-inf":
        return -math.inf
    if lowered == "nan":
        return math.nan
    return float(text)


def parse_prometheus_text(text: str) -> dict:
    """Minimal 0.0.4 parser for CI validation and round-trip tests.

    Returns ``{series_name: {"type": str|None, "samples":
    [{"labels": {...}, "value": float}, ...]}}`` where ``series_name``
    is the literal sample name (``repro_http_requests_total`` — the
    ``_total``/``_sum``/``_count`` suffixes are attributed to their
    ``# TYPE`` family).  Raises ``ValueError`` on any malformed line,
    which is exactly what the CI format gate wants.
    """
    families: dict[str, str] = {}
    series: dict[str, dict] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                if parts[2] in families:
                    raise ValueError(
                        f"line {lineno}: duplicate TYPE for {parts[2]}")
                if len(parts) < 4 or parts[3] not in (
                        "counter", "gauge", "summary", "histogram",
                        "untyped"):
                    raise ValueError(f"line {lineno}: bad TYPE line: {raw}")
                families[parts[2]] = parts[3]
            continue  # HELP and other comments: content not validated
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample: {raw}")
        name = match.group("name")
        labels: dict[str, str] = {}
        label_text = match.group("labels")
        if label_text:
            consumed = 0
            for lmatch in _LABEL_RE.finditer(label_text):
                labels[lmatch.group(1)] = (
                    lmatch.group(2).replace('\\"', '"')
                    .replace("\\n", "\n").replace("\\\\", "\\"))
                consumed += 1
            if not consumed:
                raise ValueError(f"line {lineno}: malformed labels: {raw}")
        try:
            value = _parse_number(match.group("value"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: malformed value: {raw}") from None
        family = _family_for(name, families)
        entry = series.setdefault(name, {"type": family, "samples": []})
        entry["samples"].append({"labels": labels, "value": value})
    return series


def _family_for(name: str, families: Mapping[str, str]) -> Optional[str]:
    if name in families:
        return families[name]
    for suffix in ("_total", "_sum", "_count", "_bucket"):
        if name.endswith(suffix) and name[:-len(suffix)] in families:
            return families[name[:-len(suffix)]]
    # counter families are declared as "<name>_total" in our exposition
    if name.endswith("_total") and name in families:
        return families[name]
    return None


def scrape_value(parsed: Mapping[str, Mapping], name: str,
                 **labels: str) -> Optional[float]:
    """Convenience: the value of one series/label-set, or None."""
    entry = parsed.get(name)
    if entry is None:
        return None
    for sample in entry["samples"]:
        if sample["labels"] == labels:
            return sample["value"]
    return None
