"""The metrics registry: named counters, gauges, and histograms.

Generalizes what :class:`repro.perf.PerfCounters` does for the Catalyst
hot path so *any* layer can register series without new plumbing: get or
create an instrument by name, bump it inline, read everything back in
one :meth:`MetricsRegistry.snapshot`.  Analysis (percentiles, means)
happens off the hot path, exactly like ``PerfCounters``.

Histograms are two-tier.  A bounded ring of raw samples (same
discipline as the perf latency ring) gives *exact* percentiles while it
still covers every observation; once the cap is exceeded a
:class:`~repro.obs.sketch.LogHistogram` — fed on every observe, fixed
memory, bounded relative error — takes over, so a long-lived server or
a million-visit sweep reports all-time percentiles instead of either
growing without bound or silently narrowing to a recent window.

Every instrument **merges**: :meth:`MetricsRegistry.dump` produces a
portable (pickle- and JSON-safe) state and
:meth:`MetricsRegistry.merge` folds such a dump — or another live
registry — back in.  That is what lets a process-pool fan-out ship each
worker's registry back to the parent and report fleet-wide aggregates
(see :func:`repro.experiments.parallel.run_grid_parallel`).

A process-wide default registry is available through :func:`registry`
for code with no natural injection point; experiments that need
isolation construct their own.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Optional, Union

from ..perf.counters import percentile
from .sketch import DEFAULT_RELATIVE_ERROR, LogHistogram

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "registry", "DEFAULT_HISTOGRAM_SAMPLES"]

#: default histogram raw-sample cap (exact percentiles below this)
DEFAULT_HISTOGRAM_SAMPLES = 8_192


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def merge(self, other: Union["Counter", int]) -> None:
        """Counts from disjoint shards add."""
        self.inc(other.value if isinstance(other, Counter) else int(other))

    def snapshot(self) -> int:
        return self.value

    def dump(self) -> dict:
        return {"kind": "counter", "value": self.value}


class Gauge:
    """A value that goes up and down (pool sizes, cache entry counts)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def merge(self, other: Union["Gauge", float]) -> None:
        """Gauges sum across shards (each worker owns a disjoint part
        of the fleet, so "entries per worker" merge to "entries")."""
        self.value += other.value if isinstance(other, Gauge) \
            else float(other)

    def snapshot(self) -> float:
        return self.value

    def dump(self) -> dict:
        return {"kind": "gauge", "value": self.value}


class Histogram:
    """Capped raw-sample window backed by a mergeable log sketch.

    Exact percentiles while ``count <= max_samples`` (nothing dropped
    yet); beyond the cap, :meth:`percentile` routes through the sketch,
    which has seen *every* observation at fixed memory and bounded
    relative error — not just the newest window.
    """

    __slots__ = ("name", "max_samples", "count", "total",
                 "_samples", "_ring_pos", "_sketch")

    def __init__(self, name: str,
                 max_samples: int = DEFAULT_HISTOGRAM_SAMPLES,
                 relative_error: float = DEFAULT_RELATIVE_ERROR):
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.name = name
        self.max_samples = max_samples
        self.count = 0
        self.total = 0.0
        self._samples: list[float] = []
        self._ring_pos = 0
        self._sketch = LogHistogram(relative_error=relative_error)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self._sketch.observe(value)
        if len(self._samples) < self.max_samples:
            self._samples.append(value)
        else:
            self._samples[self._ring_pos] = value
            self._ring_pos = (self._ring_pos + 1) % self.max_samples

    @property
    def samples(self) -> list[float]:
        """The retained raw window — capped at ``max_samples``."""
        return list(self._samples)

    @property
    def sketch(self) -> LogHistogram:
        """The all-time sketch (read-only use, please)."""
        return self._sketch

    @property
    def exact(self) -> bool:
        """True while the raw window still covers every observation."""
        return self.count <= len(self._samples)

    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def percentile(self, q: float) -> float:
        """Exact below the cap, sketch-estimated beyond; 0.0 when empty."""
        if self.count == 0:
            return 0.0
        if self.exact:
            return percentile(self._samples, q)
        return self._sketch.percentile(q)

    def merge(self, other: Union["Histogram", Mapping]) -> None:
        """Fold another histogram (or its :meth:`dump`) into this one.

        Raw windows concatenate up to the cap — so small merged
        histograms stay exact — and the sketches merge losslessly.
        """
        if isinstance(other, Histogram):
            state = other.dump()
        else:
            state = dict(other)
        # Extract and validate *everything* before mutating anything:
        # a dump from an incompatible schema version must fail loudly
        # and leave this histogram exactly as it was, not half-merged.
        try:
            count = int(state["count"])
            total = float(state["total"])
            samples = list(state["samples"])
            sketch_state = state["sketch"]
        except KeyError as exc:
            raise ValueError(
                f"histogram {self.name!r}: merge state missing {exc} "
                f"(incompatible dump schema)") from None
        # sketch geometry mismatches raise inside merge() before the
        # sketch itself mutates, so ordering it first keeps the whole
        # merge atomic
        self._sketch.merge(sketch_state)
        self.count += count
        self.total += total
        room = self.max_samples - len(self._samples)
        if room > 0:
            self._samples.extend(samples[:room])

    def snapshot(self) -> dict:
        """Stats shape; p50/p90/p99 always present (0.0 when empty)."""
        return {"count": self.count, "total": self.total,
                "mean": self.mean(),
                "p50": self.percentile(50),
                "p90": self.percentile(90),
                "p99": self.percentile(99)}

    def dump(self) -> dict:
        return {"kind": "histogram", "count": self.count,
                "total": self.total, "max_samples": self.max_samples,
                "samples": list(self._samples),
                "sketch": self._sketch.to_dict()}


Instrument = Union[Counter, Gauge, Histogram]

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Name -> instrument map with get-or-create accessors."""

    def __init__(self):
        self._instruments: dict[str, Instrument] = {}

    # -- get-or-create ------------------------------------------------------
    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str,
                  max_samples: int = DEFAULT_HISTOGRAM_SAMPLES) -> Histogram:
        existing = self._instruments.get(name)
        if existing is None:
            created = Histogram(name, max_samples=max_samples)
            self._instruments[name] = created
            return created
        if not isinstance(existing, Histogram):
            raise TypeError(f"metric {name!r} is a "
                            f"{type(existing).__name__}, not a Histogram")
        return existing

    def _get(self, name: str, kind: type) -> Instrument:
        existing = self._instruments.get(name)
        if existing is None:
            created = kind(name)
            self._instruments[name] = created
            return created
        if not isinstance(existing, kind):
            raise TypeError(f"metric {name!r} is a "
                            f"{type(existing).__name__}, not a "
                            f"{kind.__name__}")
        return existing

    # -- bulk ---------------------------------------------------------------
    def absorb(self, prefix: str,
               values: Mapping[str, Union[int, float]]) -> None:
        """Fold a plain numeric dump into gauges under ``prefix``.

        Built for legacy snapshot dicts — ``PerfCounters.snapshot()``,
        ``CatalystServer.stats()``, ``ServiceWorkerHost.stats()`` — so
        existing per-layer accounting surfaces through one registry
        without rewriting the layers.
        """
        for key, value in values.items():
            if isinstance(value, (int, float)) \
                    and not isinstance(value, bool):
                self.gauge(f"{prefix}.{key}").set(value)

    def snapshot(self) -> dict:
        """All instruments, by name, machine-readable."""
        return {name: instrument.snapshot()
                for name, instrument in sorted(self._instruments.items())}

    # -- fleet merge --------------------------------------------------------
    def dump(self) -> dict:
        """Portable mergeable state: plain dicts, pickle- and JSON-safe.

        This — not pickled instruments — is what crosses the process-
        pool boundary, so the wire format stays inspectable and version-
        tolerant.
        """
        return {name: instrument.dump()
                for name, instrument in sorted(self._instruments.items())}

    def merge(self, other: Union["MetricsRegistry", Mapping[str, Mapping]]
              ) -> "MetricsRegistry":
        """Fold another registry's state (live or :meth:`dump`) into this.

        Instruments are created on first sight; kind mismatches raise —
        a worker disagreeing with the parent about what ``fleet.x`` *is*
        should fail loudly, not average nonsense.
        """
        entries = other.dump() if isinstance(other, MetricsRegistry) \
            else other
        for name, state in entries.items():
            kind = _KINDS.get(state.get("kind", ""))
            if kind is None:
                raise ValueError(f"metric {name!r}: unknown kind "
                                 f"{state.get('kind')!r}")
            if kind is Histogram:
                instrument = self.histogram(
                    name, max_samples=state.get("max_samples",
                                                DEFAULT_HISTOGRAM_SAMPLES))
                instrument.merge(state)
            elif kind is Counter:
                try:
                    value = state["value"]
                except KeyError:
                    raise ValueError(f"metric {name!r}: counter state has "
                                     "no 'value' (incompatible dump "
                                     "schema)") from None
                self.counter(name).merge(value)
            else:
                try:
                    value = state["value"]
                except KeyError:
                    raise ValueError(f"metric {name!r}: gauge state has "
                                     "no 'value' (incompatible dump "
                                     "schema)") from None
                self.gauge(name).merge(value)
        return self

    def get(self, name: str) -> Optional[Instrument]:
        return self._instruments.get(name)

    def reset(self) -> None:
        self._instruments.clear()

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterator[Instrument]:
        return iter(self._instruments.values())

    def __contains__(self, name: str) -> bool:
        return name in self._instruments


_DEFAULT = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _DEFAULT
