"""The metrics registry: named counters, gauges, and histograms.

Generalizes what :class:`repro.perf.PerfCounters` does for the Catalyst
hot path so *any* layer can register series without new plumbing: get or
create an instrument by name, bump it inline, read everything back in
one :meth:`MetricsRegistry.snapshot`.  Analysis (percentiles, means)
happens off the hot path, exactly like ``PerfCounters``.

Histograms keep a bounded ring of samples (same discipline as the perf
latency ring): a long-lived server's percentiles describe the most
recent window instead of growing without bound.

A process-wide default registry is available through :func:`registry`
for code with no natural injection point; experiments that need
isolation construct their own.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Optional, Union

from ..perf.counters import percentile

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "registry", "DEFAULT_HISTOGRAM_SAMPLES"]

#: default histogram ring capacity (samples)
DEFAULT_HISTOGRAM_SAMPLES = 8_192


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A value that goes up and down (pool sizes, cache entry counts)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Bounded-ring sample distribution with off-path percentiles."""

    __slots__ = ("name", "max_samples", "count", "total",
                 "_samples", "_ring_pos")

    def __init__(self, name: str,
                 max_samples: int = DEFAULT_HISTOGRAM_SAMPLES):
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.name = name
        self.max_samples = max_samples
        self.count = 0
        self.total = 0.0
        self._samples: list[float] = []
        self._ring_pos = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if len(self._samples) < self.max_samples:
            self._samples.append(value)
        else:
            self._samples[self._ring_pos] = value
            self._ring_pos = (self._ring_pos + 1) % self.max_samples

    @property
    def samples(self) -> list[float]:
        return list(self._samples)

    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def percentile(self, q: float) -> float:
        """The q-th percentile of the retained window; 0.0 when empty."""
        if not self._samples:
            return 0.0
        return percentile(self._samples, q)

    def snapshot(self) -> dict:
        out = {"count": self.count, "total": self.total,
               "mean": self.mean()}
        if self._samples:
            out["p50"] = self.percentile(50)
            out["p90"] = self.percentile(90)
            out["p99"] = self.percentile(99)
        return out


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Name -> instrument map with get-or-create accessors."""

    def __init__(self):
        self._instruments: dict[str, Instrument] = {}

    # -- get-or-create ------------------------------------------------------
    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str,
                  max_samples: int = DEFAULT_HISTOGRAM_SAMPLES) -> Histogram:
        existing = self._instruments.get(name)
        if existing is None:
            created = Histogram(name, max_samples=max_samples)
            self._instruments[name] = created
            return created
        if not isinstance(existing, Histogram):
            raise TypeError(f"metric {name!r} is a "
                            f"{type(existing).__name__}, not a Histogram")
        return existing

    def _get(self, name: str, kind: type) -> Instrument:
        existing = self._instruments.get(name)
        if existing is None:
            created = kind(name)
            self._instruments[name] = created
            return created
        if not isinstance(existing, kind):
            raise TypeError(f"metric {name!r} is a "
                            f"{type(existing).__name__}, not a "
                            f"{kind.__name__}")
        return existing

    # -- bulk ---------------------------------------------------------------
    def absorb(self, prefix: str,
               values: Mapping[str, Union[int, float]]) -> None:
        """Fold a plain numeric dump into gauges under ``prefix``.

        Built for legacy snapshot dicts — ``PerfCounters.snapshot()``,
        ``CatalystServer.stats()``, ``ServiceWorkerHost.stats()`` — so
        existing per-layer accounting surfaces through one registry
        without rewriting the layers.
        """
        for key, value in values.items():
            if isinstance(value, (int, float)) \
                    and not isinstance(value, bool):
                self.gauge(f"{prefix}.{key}").set(value)

    def snapshot(self) -> dict:
        """All instruments, by name, machine-readable."""
        return {name: instrument.snapshot()
                for name, instrument in sorted(self._instruments.items())}

    def get(self, name: str) -> Optional[Instrument]:
        return self._instruments.get(name)

    def reset(self) -> None:
        self._instruments.clear()

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterator[Instrument]:
        return iter(self._instruments.values())

    def __contains__(self, name: str) -> bool:
        return name in self._instruments


_DEFAULT = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _DEFAULT
