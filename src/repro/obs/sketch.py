"""Mergeable fixed-memory percentile sketches.

A :class:`MetricsRegistry` histogram that hoards raw samples cannot
survive a fleet fan-out: a million-visit grid sharded over a process
pool would either ship every sample back over the pickle boundary or
silently drop each worker's distribution on the floor.  The fix is the
same one HdrHistogram and DDSketch apply to production telemetry —
bucket values on a *logarithmic* grid so that

- memory is fixed (one integer count per occupied bucket, bounded by
  ``max_buckets`` with lowest-bucket collapsing),
- any quantile estimate carries a *bounded relative error* (the bucket
  geometry guarantees it), and
- two sketches over disjoint sample sets **merge losslessly** into the
  sketch of the pooled set (bucket counts simply add), so a parallel
  grid's merged percentiles equal the serial run's sketch exactly.

Geometry (DDSketch-style): with relative-error target ``e``, buckets
grow by ``gamma = (1 + e) / (1 - e)``; a value ``x > 0`` lands in bucket
``i = ceil(log_gamma(x))`` covering ``(gamma**(i-1), gamma**i]`` and is
estimated by the interval's harmonic midpoint ``2 * gamma**i /
(gamma + 1)``, which is within ``e`` relative error of every value in
the interval.  Zeros (and values below ``min_trackable``) are counted
in a dedicated zero bucket estimated as ``0.0``; the sketch is designed
for non-negative measurements (latencies, byte counts, ratios).

The quantile rule is **nearest rank**: ``percentile(q)`` returns the
estimate for the ``ceil(q / 100 * count)``-th smallest sample, so the
documented guarantee is

    ``|percentile(q) - v| <= e * v``

where ``v`` is that sample's true value (tested in
``tests/property/test_sketch_prop.py``).  Estimates are additionally
clamped to the observed ``[min, max]``, which only tightens the bound.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional, Union

__all__ = ["LogHistogram", "DEFAULT_RELATIVE_ERROR", "DEFAULT_MAX_BUCKETS"]

#: default quantile relative-error target (1 %)
DEFAULT_RELATIVE_ERROR = 0.01

#: default occupied-bucket cap; at 1 % error this spans > 40 decades
DEFAULT_MAX_BUCKETS = 2_048

#: values at or below this are indistinguishable from zero
DEFAULT_MIN_TRACKABLE = 1e-9


class LogHistogram:
    """Log-bucketed quantile sketch with exact count/sum/min/max."""

    __slots__ = ("relative_error", "min_trackable", "max_buckets",
                 "count", "zero_count", "total", "min", "max",
                 "_gamma", "_log_gamma", "_buckets")

    def __init__(self, relative_error: float = DEFAULT_RELATIVE_ERROR,
                 min_trackable: float = DEFAULT_MIN_TRACKABLE,
                 max_buckets: int = DEFAULT_MAX_BUCKETS):
        if not 0.0 < relative_error < 1.0:
            raise ValueError(f"relative_error must be in (0, 1), "
                             f"got {relative_error}")
        if max_buckets < 2:
            raise ValueError(f"max_buckets must be >= 2, got {max_buckets}")
        self.relative_error = relative_error
        self.min_trackable = min_trackable
        self.max_buckets = max_buckets
        self._gamma = (1.0 + relative_error) / (1.0 - relative_error)
        self._log_gamma = math.log(self._gamma)
        self.count = 0
        #: samples at or below ``min_trackable`` (estimated as 0.0)
        self.zero_count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        #: bucket index -> sample count (sparse; collapsed at the cap)
        self._buckets: dict[int, int] = {}

    # -- recording -----------------------------------------------------------
    def _index(self, value: float) -> int:
        # ceil with a tiny nudge so exact bucket boundaries do not flip
        # to the bucket above through float log error
        return math.ceil(math.log(value) / self._log_gamma - 1e-12)

    def observe(self, value: float, n: int = 1) -> None:
        if n <= 0:
            return
        self.count += n
        self.total += value * n
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= self.min_trackable:
            self.zero_count += n
            return
        index = self._index(value)
        self._buckets[index] = self._buckets.get(index, 0) + n
        if len(self._buckets) > self.max_buckets:
            self._collapse()

    def _collapse(self) -> None:
        """Fold the lowest buckets together until under the cap.

        Sacrifices low-quantile resolution first (the DDSketch policy):
        tail percentiles — the ones dashboards gate on — keep their
        error bound.
        """
        indices = sorted(self._buckets)
        while len(self._buckets) > self.max_buckets:
            lowest, second = indices[0], indices[1]
            self._buckets[second] += self._buckets.pop(lowest)
            indices.pop(0)

    # -- merge ---------------------------------------------------------------
    def merge(self, other: Union["LogHistogram", Mapping]) -> "LogHistogram":
        """Fold another sketch (or its :meth:`to_dict` dump) into this one.

        Merging is exact with respect to sketching: the merged bucket
        counts equal those of one sketch fed every pooled sample.
        """
        if not isinstance(other, LogHistogram):
            other = LogHistogram.from_dict(other)
        if (other.relative_error != self.relative_error
                or other.min_trackable != self.min_trackable):
            raise ValueError(
                "cannot merge sketches with different geometry: "
                f"error {self.relative_error} vs {other.relative_error}, "
                f"min {self.min_trackable} vs {other.min_trackable}")
        self.count += other.count
        self.zero_count += other.zero_count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for index, n in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + n
        if len(self._buckets) > self.max_buckets:
            self._collapse()
        return self

    # -- quantiles -----------------------------------------------------------
    def _estimate(self, index: int) -> float:
        value = 2.0 * self._gamma ** index / (self._gamma + 1.0)
        # clamping to the observed range only moves the estimate toward
        # the true sample, so the error bound survives
        return min(max(value, self.min), self.max)

    def percentile(self, q: float) -> float:
        """Nearest-rank quantile estimate; 0.0 when empty."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile out of range: {q}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q / 100.0 * self.count))
        if rank <= self.zero_count:
            # The rank falls among the <= min_trackable samples, whose
            # estimate is 0.0 (absolute, not relative, error there).
            return 0.0
        seen = self.zero_count
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                return self._estimate(index)
        return self.max  # float slack fallback; rank <= count always

    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total / self.count

    # -- introspection -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._buckets) + (1 if self.zero_count else 0)

    def snapshot(self) -> dict:
        """Stats-endpoint shape; percentiles always present."""
        empty = self.count == 0
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean(),
            "min": 0.0 if empty else self.min,
            "max": 0.0 if empty else self.max,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    # -- portable dump (pickle- and JSON-safe) -------------------------------
    def to_dict(self) -> dict:
        return {
            "relative_error": self.relative_error,
            "min_trackable": self.min_trackable,
            "max_buckets": self.max_buckets,
            "count": self.count,
            "zero_count": self.zero_count,
            "total": self.total,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
            "buckets": {str(index): n
                        for index, n in sorted(self._buckets.items())},
        }

    @classmethod
    def from_dict(cls, state: Mapping) -> "LogHistogram":
        sketch = cls(relative_error=state["relative_error"],
                     min_trackable=state["min_trackable"],
                     max_buckets=state.get("max_buckets",
                                           DEFAULT_MAX_BUCKETS))
        sketch.count = int(state["count"])
        sketch.zero_count = int(state["zero_count"])
        sketch.total = float(state["total"])
        sketch.min = math.inf if state["min"] is None else float(state["min"])
        sketch.max = -math.inf if state["max"] is None \
            else float(state["max"])
        sketch._buckets = {int(index): int(n)
                           for index, n in state["buckets"].items()}
        return sketch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<LogHistogram n={self.count} err={self.relative_error} "
                f"buckets={len(self._buckets)}>")
