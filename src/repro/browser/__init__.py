"""Headless-browser page-load model.

- :class:`BrowserSession` — per-origin client state across visits
- :class:`PageLoader` / :class:`BrowserConfig` — one visit's machinery
- :class:`NetworkClient` — pooled connections over the simulated link
- :class:`BrowserCache` / :class:`ServiceWorkerHost` — the cache layers
- :mod:`metrics` — the fetch timeline and PLT
"""

from .cache_layer import BrowserCache, CachePlan
from .engine import BrowserConfig, BrowserSession, PageLoader
from .fetcher import (CONNECTIONS_PER_ORIGIN, ExchangeRecord, NetworkClient,
                      OriginHandler, OriginUnreachable)
from .js import ScriptModel, extract_js_fetches, kind_from_url
from .metrics import FetchEvent, FetchSource, PageLoadResult
from .sw_host import ServiceWorkerHost
from .trace import render_waterfall, to_har, to_har_json

__all__ = [
    "BrowserSession", "PageLoader", "BrowserConfig",
    "NetworkClient", "OriginHandler", "ExchangeRecord",
    "CONNECTIONS_PER_ORIGIN", "OriginUnreachable",
    "BrowserCache", "CachePlan", "ServiceWorkerHost",
    "ScriptModel", "extract_js_fetches", "kind_from_url",
    "FetchEvent", "FetchSource", "PageLoadResult",
    "to_har", "to_har_json", "render_waterfall",
]
