"""The page loader: everything between navigation and ``onLoad``.

The model reproduces the scheduling structure that determines PLT (and
that Figure 1 of the paper illustrates):

- fetch the base HTML (always revalidated — base documents are
  ``no-cache`` in the corpus, as in the paper's worked example),
- parse it (size-proportional delay), discovering the statically visible
  subresources; all of them start fetching immediately (browsers' preload
  scanner behaviour), bounded by 6 connections per origin,
- stylesheets, once fetched, reveal their ``url()`` children; scripts,
  once fetched and *executed* (size-proportional delay), reveal their
  dynamic fetches — the resources no static parse can see,
- ``onLoad`` fires when the whole tree has completed.

Every resource acquisition goes through a three-layer pipeline:

1. **Service Worker** (CacheCatalyst only): stapled-ETag match -> serve
   from SW cache with zero network,
2. **HTTP cache** (status quo): fresh -> serve locally; stale -> make the
   request conditional,
3. **network**: the pooled :class:`~repro.browser.fetcher.NetworkClient`.

Server Push is modelled at the same layer as the paper discusses it: the
server streams push bodies down the shared link right after the HTML;
pushed resources become locally available when their bytes land, and a
request for a pushed URL waits for the push instead of going out.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ..core.etag_config import ETAG_CONFIG_DIGEST_HEADER
from ..html.parser import (ResourceKind, ResourceRef, extract_resources,
                           extract_resources_cached, parse_html)
from ..html.css import extract_css_refs, extract_css_refs_cached
from ..html.rewrite import has_sw_registration
from ..http.messages import Request, Response
from ..netsim.link import Link
from ..netsim.sim import Event, Simulator
from ..netsim.tcp import ConnectionPolicy
from .cache_layer import BrowserCache, CachePlan
from .fetcher import (FetchFailed, NetworkClient, OriginHandler,
                      OriginUnreachable)
from .js import ScriptModel, extract_js_fetches, kind_from_url
from .metrics import FetchEvent, FetchSource, PageLoadResult
from .sw_host import ServiceWorkerHost

__all__ = ["BrowserConfig", "BrowserSession", "PageLoader"]


@dataclass(frozen=True)
class BrowserConfig:
    """Client-side cost model and feature switches."""

    connections_per_origin: int = 6
    #: HTML parsing throughput (~10 MB/s) with a small floor
    parse_s_per_byte: float = 0.1e-6
    min_parse_s: float = 0.002
    #: SW cache lookup cost per interception (it is not free)
    sw_lookup_s: float = 0.0008
    #: HTTP cache lookup cost on a local hit
    cache_lookup_s: float = 0.0003
    script_model: ScriptModel = field(default_factory=ScriptModel)
    #: origin processing time for asset requests
    server_think_s: float = 0.005
    #: origin processing time for the base HTML (template rendering —
    #: and, for Catalyst, the DOM traversal + ETag map construction)
    html_server_think_s: float = 0.020
    #: connection setup model
    connection_policy: ConnectionPolicy = field(
        default_factory=ConnectionPolicy)
    #: HTTP/2 transport: one multiplexed connection per origin instead of
    #: six HTTP/1.1 connections (the paper's Caddy serves h2 by default)
    http2: bool = False
    #: consult the browser HTTP cache (off = the no-cache baseline)
    use_http_cache: bool = True
    #: run the CacheCatalyst service worker client
    use_service_worker: bool = False
    #: client cancels pushes for URLs it already has cached (HTTP/2
    #: RST_STREAM); off by default — matches measured deployments
    push_cancel_cached: bool = False
    #: speculative connections opened at navigation start (browsers'
    #: preconnect); 0 disables
    preconnect: int = 0
    #: per-request watchdog; ``inf`` disables it (a link-level fault plan
    #: still arms a generous default so lost requests cannot hang a load)
    request_timeout_s: float = math.inf
    #: extra network attempts allowed per resource after the first fails
    max_retries: int = 3
    #: capped exponential backoff between attempts (deterministic jitter)
    retry_backoff_s: float = 0.25
    retry_backoff_cap_s: float = 4.0
    #: reuse the content-digest-keyed HTML/CSS dependency graphs across
    #: visits (the simulated parse *time* is still charged either way;
    #: this only skips redundant wall-clock parsing work, so results are
    #: byte-identical with it off)
    parse_cache: bool = True

    def parse_time(self, nbytes: int) -> float:
        return max(self.min_parse_s, nbytes * self.parse_s_per_byte)

    def think_for(self, url: str, is_document: bool) -> float:
        return self.html_server_think_s if is_document \
            else self.server_think_s


class BrowserSession:
    """Per-origin client state that persists *across* visits.

    Holds the HTTP cache and the Service-Worker host; everything else
    (connections, in-flight bookkeeping) is per-visit.
    """

    def __init__(self, config: Optional[BrowserConfig] = None):
        # config=None means "a fresh default per call" — a shared
        # BrowserConfig() default evaluated once at def time would alias
        # one instance across every session ever constructed.
        self.config = config if config is not None else BrowserConfig()
        self.http_cache = BrowserCache()
        self.sw = ServiceWorkerHost()
        self.visits = 0

    def clear_caches(self) -> None:
        self.http_cache.clear()
        self.sw.cache.clear()
        self.sw.etag_config = None
        self.sw.registered = False

    def load(self, sim: Simulator, link: Link, handler: OriginHandler,
             page_url: str, mode_label: str = "",
             push_urls_fn=None, hint_urls_fn=None,
             session_id: Optional[str] = None):
        """DES process: perform one visit; returns a PageLoadResult."""
        loader = PageLoader(sim=sim, link=link, handler=handler,
                            session=self, mode_label=mode_label,
                            push_urls_fn=push_urls_fn,
                            hint_urls_fn=hint_urls_fn,
                            session_id=session_id)
        self.visits += 1
        result = yield from loader.run(page_url)
        return result


class PageLoader:
    """One visit's worth of page-load machinery."""

    def __init__(self, sim: Simulator, link: Link, handler: OriginHandler,
                 session: BrowserSession, mode_label: str = "",
                 push_urls_fn=None, hint_urls_fn=None,
                 session_id: Optional[str] = None):
        self.sim = sim
        self.link = link
        self.session = session
        self.config = session.config
        self.mode_label = mode_label
        self.push_urls_fn = push_urls_fn
        self.hint_urls_fn = hint_urls_fn
        self.session_id = session_id
        self.client = NetworkClient(
            sim=sim, link=link, handler=handler,
            policy=self.config.connection_policy,
            connections_per_origin=self.config.connections_per_origin,
            server_think_s=self.config.server_think_s,
            multiplexed=self.config.http2,
            request_timeout_s=self.config.request_timeout_s,
            max_retries=self.config.max_retries,
            backoff_base_s=self.config.retry_backoff_s,
            backoff_cap_s=self.config.retry_backoff_cap_s)
        self.events: list[FetchEvent] = []
        #: the simulator's tracer (NULL_TRACER unless a trace is active)
        self.tracer = sim.tracer
        if self.tracer.enabled:
            # The SW host outlives visits; point it at the live tracer so
            # cache verdicts land in this load's trace.
            self.session.sw.tracer = self.tracer
        self._page_span = None
        #: url -> completion event carrying the usable Response
        self._in_flight: dict[str, Event] = {}
        #: url -> completion event for pushed resources
        self._pushes: dict[str, Event] = {}
        #: bytes each push stream moved (for waste accounting)
        self._push_bytes: dict[str, int] = {}
        self._push_consumed: set[str] = set()
        self._blocking_done_s = 0.0

    # ------------------------------------------------------------------ run
    def run(self, page_url: str):
        start = self.sim.now
        tracer = self.tracer
        if tracer.enabled:
            self._page_span = tracer.begin(
                "page.load", "browser",
                args={"url": page_url, "mode": self.mode_label})
        if self.config.preconnect > 0:
            self.sim.process(
                self.client.warm_up(self.config.preconnect),
                name="preconnect")
        html_response = yield from self._acquire(ResourceRef(
            url=page_url, kind=ResourceKind.DOCUMENT, blocking=True,
            discovered_by=""), is_document=True)
        markup = html_response.body.decode(errors="replace")
        if self.config.use_service_worker:
            self.session.sw.observe_registration(has_sw_registration(markup))

        if self.push_urls_fn is not None:
            self._start_pushes(markup)
        if self.hint_urls_fn is not None:
            # Early Hints: start hinted fetches before parsing even
            # begins.  They ride the normal cache/fetch pipeline; the
            # parse-driven fetch tree deduplicates onto them.  Hinted
            # fetches the page never needs do not block onLoad.
            for url in self.hint_urls_fn(markup):
                ref = ResourceRef(url=url, kind=kind_from_url(url),
                                  blocking=False, discovered_by="hints")
                self.sim.process(self._fetch_tree(ref),
                                 name=f"hint:{url}")

        pspan = tracer.begin("browser.parse", "browser",
                             parent=self._page_span,
                             args={"bytes": len(markup)}) \
            if tracer.enabled else None
        yield self.sim.timeout(self.config.parse_time(len(markup)))
        if pspan is not None:
            pspan.end()
        parse_done = self.sim.now
        self._blocking_done_s = parse_done

        if self.config.parse_cache:
            refs = extract_resources_cached(markup, base_url="")
        else:
            refs = extract_resources(parse_html(markup), base_url="")
        subtree_events = [
            self.sim.process(self._fetch_tree(ref), name=f"fetch:{ref.url}")
            for ref in refs]
        if subtree_events:
            yield self.sim.all_of(subtree_events)

        onload = self.sim.now
        wasted = sum(nbytes for url, nbytes in self._push_bytes.items()
                     if url not in self._push_consumed)
        result = PageLoadResult(
            url=page_url, mode=self.mode_label, start_s=start,
            onload_s=onload, events=self.events,
            first_render_s=max(self._blocking_done_s, parse_done),
            wasted_push_bytes=wasted)
        if self._page_span is not None:
            self._page_span.annotate(
                plt_ms=result.plt_ms, fetches=len(self.events),
                bytes_down=result.bytes_down).end()
        return result

    # ----------------------------------------------------------- fetch tree
    def _fetch_tree(self, ref: ResourceRef):
        """Process: acquire one resource, then its transitive children."""
        response = yield from self._acquire_dedup(ref)
        if response is None or response.status != 200:
            return
        if ref.blocking:
            self._blocking_done_s = max(self._blocking_done_s, self.sim.now)
        children: list[ResourceRef] = []
        if ref.kind is ResourceKind.STYLESHEET:
            children = self._css_children(ref, response)
        elif ref.kind is ResourceKind.SCRIPT:
            exec_s = self.config.script_model.execution_time(
                response.transfer_size)
            espan = self.tracer.begin(
                "browser.exec", "browser", parent=self._page_span,
                args={"url": ref.url}) if self.tracer.enabled else None
            yield self.sim.timeout(exec_s)
            if espan is not None:
                espan.end()
            if ref.blocking:
                self._blocking_done_s = max(self._blocking_done_s,
                                            self.sim.now)
            children = self._js_children(ref, response)
        if children:
            child_events = [
                self.sim.process(self._fetch_tree(child),
                                 name=f"fetch:{child.url}")
                for child in children]
            yield self.sim.all_of(child_events)

    def _css_children(self, ref: ResourceRef,
                      response: Response) -> list[ResourceRef]:
        body = response.body.decode(errors="replace")
        css_refs = (extract_css_refs_cached(body) if self.config.parse_cache
                    else extract_css_refs(body))
        children = []
        for css_ref in css_refs:
            kind = (ResourceKind.STYLESHEET if css_ref.kind == "import"
                    else ResourceKind.FONT if css_ref.kind == "font"
                    else ResourceKind.IMAGE)
            children.append(ResourceRef(
                url=css_ref.url, kind=kind,
                blocking=(css_ref.kind == "import" and ref.blocking),
                discovered_by=ref.url))
        return children

    def _js_children(self, ref: ResourceRef,
                     response: Response) -> list[ResourceRef]:
        body = response.body.decode(errors="replace")
        return [ResourceRef(url=url, kind=kind_from_url(url),
                            blocking=False, discovered_by=ref.url)
                for url in extract_js_fetches(body)]

    # ------------------------------------------------------------- acquire
    def _acquire_dedup(self, ref: ResourceRef):
        """Deduplicated acquire: one fetch per URL per page load."""
        existing = self._in_flight.get(ref.url)
        if existing is not None:
            response = yield existing
            return response
        done = self.sim.event()
        self._in_flight[ref.url] = done
        try:
            response = yield from self._acquire(ref)
        except Exception as exc:  # propagate to waiters, then re-raise
            done.fail(exc)
            raise
        done.succeed(response)
        return response

    def _acquire(self, ref: ResourceRef, is_document: bool = False):
        """Process: the three-layer pipeline for one resource."""
        start = self.sim.now
        tracer = self.tracer
        fspan = tracer.begin(
            "browser.fetch", "browser", parent=self._page_span,
            args={"url": ref.url, "kind": ref.kind.name.lower(),
                  "blocking": ref.blocking}) if tracer.enabled else None
        request = Request(method="GET", url=ref.url)
        if self.session_id is not None:
            request.headers.set("X-Client-Id", self.session_id)
        if is_document and self.config.use_service_worker:
            digest = self.session.sw.config_digest()
            if digest is not None:
                request.headers.set(ETAG_CONFIG_DIGEST_HEADER, digest)

        # Layer 1: Service Worker interception (CacheCatalyst).
        if self.config.use_service_worker and not is_document:
            # intercept() is synchronous; parenting() safely hands the
            # fetch span to the SW host's verdict instants.
            with tracer.parenting(fspan):
                hit = self.session.sw.intercept(request, self.sim.now)
            if hit is not None:
                yield self.sim.timeout(self.config.sw_lookup_s)
                self._record(ref, start, hit, FetchSource.SW_CACHE,
                             bytes_down=0, rtts=0.0, span=fspan)
                return hit

        # Layer 2: the HTTP cache.
        plan = None
        outgoing = request
        if self.config.use_http_cache:
            plan = self.session.http_cache.plan(request, self.sim.now)
            plan = self._sw_veto(request, plan)
            if plan.is_local_hit:
                yield self.sim.timeout(self.config.cache_lookup_s)
                response = plan.local_response
                self._record(ref, start, response, FetchSource.HTTP_CACHE,
                             bytes_down=0, rtts=0.0, span=fspan)
                if self.config.use_service_worker:
                    with tracer.parenting(fspan):
                        self.session.sw.on_response(request, response,
                                                    self.sim.now,
                                                    is_document=is_document)
                return response
            outgoing = plan.outgoing

        # Layer 2.5: a push racing down the pipe for this URL.  Consulted
        # only when the local caches could not answer — a browser never
        # waits for a push stream to re-deliver what it already has.
        push_event = self._pushes.get(ref.url)
        if push_event is not None:
            response = yield push_event
            if response is not None:
                self._push_consumed.add(ref.url)
                nbytes = (response.transfer_size
                          + response.headers.wire_size())
                self._record(ref, start, response, FetchSource.PUSHED,
                             bytes_down=nbytes, rtts=0.0, span=fspan)
                return response

        # Layer 3: the network.
        request_time = self.sim.now
        conn_count_before = self.client.connections_opened
        retries_before = self.client.retries
        try:
            response = yield from self.client.exchange(
                outgoing,
                think_s=self.config.think_for(ref.url, is_document),
                span=fspan)
        except OriginUnreachable:
            # Offline: the SW may still hold a usable (possibly stale)
            # copy — the paper's §3 offline capability.
            if self.config.use_service_worker:
                fallback = self.session.sw.offline_fallback(
                    request, self.sim.now)
                if fallback is not None:
                    self._record(ref, start, fallback,
                                 FetchSource.OFFLINE_CACHE,
                                 bytes_down=0, rtts=0.0, span=fspan)
                    return fallback
            if is_document:
                if fspan is not None:
                    fspan.set("error", "OriginUnreachable").end()
                raise  # nothing to render at all
            # a failed subresource fires onerror; the page load goes on
            failed = Response(status=504, body=b"",
                              reason="Origin Unreachable")
            self._record(ref, start, failed, FetchSource.NETWORK,
                         bytes_down=0, rtts=0.0, status=504, span=fspan)
            return failed
        except FetchFailed:
            # The retry budget ran dry (lossy link, resets, stalls).
            # Degrade exactly like an unreachable origin: a cached copy
            # if the SW holds one, an onerror'd subresource otherwise.
            retries = self.client.retries - retries_before
            if self.config.use_service_worker:
                fallback = self.session.sw.offline_fallback(
                    request, self.sim.now)
                if fallback is not None:
                    self._record(ref, start, fallback,
                                 FetchSource.OFFLINE_CACHE,
                                 bytes_down=0, rtts=0.0, retries=retries,
                                 span=fspan)
                    return fallback
            if is_document:
                if fspan is not None:
                    fspan.set("error", "FetchFailed").end()
                raise  # nothing to render at all
            failed = Response(status=504, body=b"",
                              reason="Fetch Failed")
            self._record(ref, start, failed, FetchSource.NETWORK,
                         bytes_down=0, rtts=0.0, status=504,
                         retries=retries, span=fspan)
            return failed
        response_time = self.sim.now
        new_connection = self.client.connections_opened > conn_count_before
        retries = self.client.retries - retries_before

        usable = response
        if plan is not None:
            usable = self.session.http_cache.absorb(
                plan, request, response, request_time, response_time)
        if self.config.use_service_worker:
            with tracer.parenting(fspan):
                self.session.sw.on_response(request, usable, self.sim.now,
                                            is_document=is_document)

        rtts = 1.0 + (self.config.connection_policy.setup_rtts
                      if new_connection else 0.0)
        source = (FetchSource.REVALIDATED
                  if response.is_not_modified else FetchSource.NETWORK)
        bytes_down = (response.transfer_size
                      + response.headers.wire_size())
        self._record(ref, start, usable, source, bytes_down=bytes_down,
                     rtts=rtts, status=response.status, retries=retries,
                     span=fspan)
        return usable

    def _sw_veto(self, request: Request, plan) -> "CachePlan":
        """Let stapled knowledge override a TTL-fresh-but-changed hit.

        The HTTP cache may deem an entry fresh purely by its (guessed)
        TTL; when the Service Worker's ``X-Etag-Config`` proves the
        content changed on the origin, serving that entry would be a
        *stale serve* — exactly the failure mode TTL-guessing causes.
        The SW downgrades such hits to conditional requests.
        """
        if not self.config.use_service_worker:
            return plan
        sw = self.session.sw
        if not plan.is_local_hit or not sw.registered \
                or sw.etag_config is None:
            return plan
        expected = sw.etag_config.etag_for(request.path)
        if expected is None:
            return plan
        local_tag = plan.local_response.etag
        if local_tag is not None and local_tag.weak_compare(expected):
            return plan
        demoted = self.session.http_cache.revalidation_plan(
            request, plan.local_entry)
        if demoted is not None:
            return demoted
        return CachePlan(outgoing=request.copy())

    # --------------------------------------------------------------- pushes
    def _start_pushes(self, markup: str) -> None:
        """Queue push streams for the planner's URL set."""
        for url in self.push_urls_fn(markup):
            if url in self._pushes:
                continue
            if self.config.push_cancel_cached and self._have_cached(url):
                continue  # client RSTs the promise; ~no bytes wasted
            done = self.sim.event()
            self._pushes[url] = done
            self.sim.process(self._push_stream(url, done),
                             name=f"push:{url}")

    def _push_stream(self, url: str, done: Event):
        """Process: server-initiated transfer of one pushed resource."""
        request = Request(method="GET", url=url)
        response = self.client.handler(request, self.sim.now)
        if response.status != 200:
            done.succeed(None)
            return
        nbytes = response.transfer_size + response.headers.wire_size()
        self._push_bytes[url] = nbytes
        yield from self.link.send_downstream(nbytes)
        if self.config.use_http_cache:
            self.session.http_cache.store_pushed(request, response,
                                                 self.sim.now)
        if self.config.use_service_worker:
            self.session.sw.on_response(request, response, self.sim.now)
        done.succeed(response)

    def _have_cached(self, url: str) -> bool:
        request = Request(method="GET", url=url)
        entry = self.session.http_cache.store.lookup(request, self.sim.now)
        if entry is not None:
            return True
        return url in self.session.sw.cache

    # ------------------------------------------------------------- recording
    def _record(self, ref: ResourceRef, start: float, response: Response,
                source: FetchSource, bytes_down: int, rtts: float,
                status: int = 200, retries: int = 0, span=None) -> None:
        etag = response.etag
        self.events.append(FetchEvent(
            url=ref.url, kind=ref.kind, source=source, start_s=start,
            end_s=self.sim.now, status=status, bytes_down=bytes_down,
            rtts_paid=rtts, blocking=ref.blocking,
            discovered_via=ref.discovered_by or "html",
            served_etag=etag.opaque if etag else "",
            retries=retries))
        if span is not None:
            span.annotate(source=source.value, status=status,
                          bytes_down=bytes_down, retries=retries).end()
