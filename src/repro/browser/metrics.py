"""Page-load metrics: the fetch timeline and the numbers derived from it.

PLT is measured exactly the way the paper measures it — the ``onLoad``
moment, i.e. when the document and every subresource it (transitively)
required has finished loading.  We additionally expose a first-render
approximation (all render-blocking resources done), bytes moved, and RTT
accounting, which the comparison benches report.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..html.parser import ResourceKind

__all__ = ["FetchSource", "FetchEvent", "PageLoadResult"]


class FetchSource(enum.Enum):
    """Where a resource's bytes came from."""

    NETWORK = "network"          # full fetch over the network
    REVALIDATED = "revalidated"  # conditional request answered 304
    HTTP_CACHE = "http-cache"    # fresh in the browser cache, no network
    SW_CACHE = "sw-cache"        # CacheCatalyst ETag match, no network
    OFFLINE_CACHE = "offline-cache"  # origin unreachable, SW served anyway
    PUSHED = "pushed"            # arrived via server push


@dataclass
class FetchEvent:
    """One resource acquisition in the page-load timeline."""

    url: str
    kind: ResourceKind
    source: FetchSource
    start_s: float
    end_s: float
    status: int = 200
    #: bytes that crossed the downlink for this resource (0 on cache hits)
    bytes_down: int = 0
    #: full round trips paid on the critical path of this acquisition
    rtts_paid: float = 0.0
    blocking: bool = False
    discovered_via: str = "html"
    #: opaque ETag of the representation that was actually used (cache
    #: hits included) — lets experiments audit staleness post-hoc
    served_etag: str = ""
    #: network attempts re-issued after a failure (timeouts, resets,
    #: truncations); 0 on the happy path and on cache hits
    retries: int = 0

    @property
    def elapsed_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class PageLoadResult:
    """Everything one simulated page load produced."""

    url: str
    mode: str
    start_s: float
    onload_s: float
    events: list[FetchEvent] = field(default_factory=list)
    #: all render-blocking work done (first-render approximation)
    first_render_s: Optional[float] = None
    #: bytes pushed by the server that no fetch ever consumed (the §5
    #: bandwidth-waste criticism, measured)
    wasted_push_bytes: int = 0

    # -- the headline number -----------------------------------------------------
    @property
    def plt_s(self) -> float:
        """Page Load Time: start of navigation to the onLoad event."""
        return self.onload_s - self.start_s

    @property
    def plt_ms(self) -> float:
        return self.plt_s * 1000.0

    @property
    def first_render_ms(self) -> Optional[float]:
        if self.first_render_s is None:
            return None
        return (self.first_render_s - self.start_s) * 1000.0

    # -- aggregates ------------------------------------------------------------
    @property
    def bytes_down(self) -> int:
        """Downlink bytes this load consumed, unconsumed pushes included."""
        return sum(event.bytes_down for event in self.events) \
            + self.wasted_push_bytes

    @property
    def rtts_paid(self) -> float:
        return sum(event.rtts_paid for event in self.events)

    @property
    def request_count(self) -> int:
        return sum(1 for event in self.events
                   if event.source in (FetchSource.NETWORK,
                                       FetchSource.REVALIDATED))

    @property
    def retries_total(self) -> int:
        """Network attempts re-issued after a failure, load-wide."""
        return sum(event.retries for event in self.events)

    @property
    def failure_count(self) -> int:
        """Resources that never arrived (5xx/onerror events)."""
        return sum(1 for event in self.events if event.status >= 500)

    def failed_urls(self) -> list[str]:
        return [event.url for event in self.events if event.status >= 500]

    def count_by_source(self) -> dict[FetchSource, int]:
        counts: dict[FetchSource, int] = {}
        for event in self.events:
            counts[event.source] = counts.get(event.source, 0) + 1
        return counts

    def events_for(self, url: str) -> list[FetchEvent]:
        return [event for event in self.events if event.url == url]

    def timeline(self) -> list[FetchEvent]:
        """Events sorted by start time (stable for equal starts)."""
        return sorted(self.events, key=lambda event: event.start_s)

    def describe(self) -> str:
        """Multi-line human-readable timeline (used by the Figure 1 bench)."""
        lines = [f"{self.mode}: {self.url} PLT={self.plt_ms:.1f}ms"]
        for event in self.timeline():
            lines.append(
                f"  {event.start_s * 1000:8.1f}ms +{event.elapsed_s * 1000:7.1f}ms "
                f"{event.source.value:<12} {event.status} {event.url}")
        return "\n".join(lines)
