"""Client-side Service Worker host — CacheCatalyst's browser half.

Models what :data:`repro.server.catalyst.SERVICE_WORKER_JS` does inside a
real browser (Figure 2 of the paper): a per-origin proxy between the page
and the network that

- learns the current ``X-Etag-Config`` map from each base-HTML response,
- intercepts subresource requests and serves them from its cache when the
  stored ETag weak-matches the stapled one (zero network), and
- stores every non-``no-store`` response it forwards.

Registration life cycle is modelled too: the SW only intercepts from the
moment its registration (injected on the first visit) has activated, just
like the real API.
"""

from __future__ import annotations

import math
from typing import Optional

from ..cache.service_worker import ServiceWorkerCache
from ..core.etag_config import ETAG_CONFIG_SAME_HEADER, EtagConfig
from ..http.messages import Request, Response
from ..obs.trace import NULL_TRACER

__all__ = ["ServiceWorkerHost"]


class ServiceWorkerHost:
    """One origin's cache Service Worker state inside the browser."""

    def __init__(self, max_bytes: float = math.inf):
        self._tracer = NULL_TRACER
        self.cache = ServiceWorkerCache(max_bytes=max_bytes)
        #: the most recent stapled map; None before any catalyst response
        self.etag_config: Optional[EtagConfig] = None
        #: True once the injected registration has installed+activated
        self.registered = False
        self.intercepted_hits = 0
        self.forwarded = 0
        #: times the server confirmed the held map is still current
        self.map_reuse_confirmations = 0
        #: document responses whose map was missing or unsalvageable,
        #: forcing the degradation to standard conditional revalidation
        self.degraded_documents = 0

    # The host outlives individual traced visits; a PageLoader rebinds
    # this per load.  The cache shares the same tracer so its ETag
    # verdicts land in the same trace.
    @property
    def tracer(self):
        return self._tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        self._tracer = tracer
        self.cache.tracer = tracer

    # -- registration ------------------------------------------------------------
    def observe_registration(self, markup_has_snippet: bool) -> None:
        """Called after an HTML response; activates the SW if injected.

        Our SW calls ``clients.claim()``, so it starts controlling the
        page that registered it as soon as it activates — during the first
        visit, exactly as the paper's deployment intends.
        """
        if markup_has_snippet:
            self.registered = True

    # -- the fetch interception path ----------------------------------------------
    def intercept(self, request: Request, now: float) -> Optional[Response]:
        """Cache-or-None for a subresource request (zero-RTT path)."""
        if not self.registered or self.etag_config is None:
            return None
        if request.method != "GET":
            return None
        expected = self.etag_config.etag_for(request.path)
        if expected is None:
            if self._tracer.enabled:
                self._tracer.instant(
                    "sw.intercept", "sw",
                    parent=self._tracer.current_parent,
                    args={"url": request.path, "verdict": "unvouched"},
                    at=now)
            return None
        response = self.cache.match(request, expected, now)
        if response is not None:
            self.intercepted_hits += 1
        if self._tracer.enabled:
            self._tracer.instant(
                "sw.intercept", "sw",
                parent=self._tracer.current_parent,
                args={"url": request.path,
                      "verdict": "hit" if response is not None else "miss"},
                at=now)
        return response

    def config_digest(self) -> Optional[str]:
        """Digest of the currently-held map (for the request header)."""
        if self.etag_config is None:
            return None
        return self.etag_config.digest()

    def on_response(self, request: Request, response: Response,
                    now: float, is_document: bool = False) -> None:
        """Learn from a response that went over the network.

        Trust model under faults: a *document* response is the moment the
        map must refresh.  When it arrives with a missing, truncated, or
        unsalvageable map (and no ``X-Etag-Config-Same`` confirming the
        held copy), the held map is dropped rather than kept — stale
        stapled tags must never vouch for resources the server no longer
        vouches for.  Every intercept then misses and the fetch falls
        back to standard conditional revalidation, which is exactly the
        status-quo path.  Salvageable partial maps are applied as-is:
        surviving URLs keep the zero-RTT path, the rest revalidate.
        """
        self.forwarded += 1
        verdict = "no_map"
        same = response.headers.get(ETAG_CONFIG_SAME_HEADER)
        if same is not None and self.etag_config is not None \
                and same == self.etag_config.digest():
            self.map_reuse_confirmations += 1
            verdict = "map_confirmed"
        else:
            config = EtagConfig.from_headers(response.headers)
            if config is not None:
                if self.etag_config is None or is_document:
                    # Base-HTML maps replace (the server re-vouches from
                    # scratch each navigation); per-CSS maps extend.
                    self.etag_config = config
                    verdict = "map_replaced"
                else:
                    self.etag_config = self.etag_config.merged_with(config)
                    verdict = "map_merged"
            elif is_document:
                if self.etag_config is not None:
                    self.degraded_documents += 1
                self.etag_config = None
                verdict = "map_dropped"
        if self._tracer.enabled and verdict != "no_map":
            self._tracer.instant(
                "sw.update", "sw", parent=self._tracer.current_parent,
                args={"url": request.path, "verdict": verdict,
                      "known_urls": self.knows}, at=now)
        if self.registered and response.status == 200:
            self.cache.put(request, response, now)

    def offline_fallback(self, request: Request,
                         now: float) -> Optional[Response]:
        """Best-effort cached response when the origin is unreachable.

        The paper (§3) notes a Service Worker "can ... respond to
        requests on its own ... when the origin server is not accessible
        (for example, in offline mode)".  Freshness is unknowable without
        the origin, so any cached body is served as-is, marked with
        ``Warning: 111`` (revalidation failed) per RFC 9111 §5.5.
        """
        if not self.registered or request.method != "GET":
            return None
        entry = self.cache.peek(request.path)
        if entry is None:
            return None
        response = entry.response.copy()
        response.headers.set("Warning", '111 - "Revalidation Failed"')
        return response

    # -- introspection ------------------------------------------------------------
    @property
    def knows(self) -> int:
        """Number of URLs with stapled tokens currently held."""
        return 0 if self.etag_config is None else len(self.etag_config)

    def stats(self) -> dict[str, int]:
        return {
            "intercepted_hits": self.intercepted_hits,
            "forwarded": self.forwarded,
            "etag_hits": self.cache.etag_hits,
            "etag_misses": self.cache.etag_misses,
            "entries": self.cache.entry_count,
            "degraded_documents": self.degraded_documents,
        }
