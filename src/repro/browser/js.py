"""Modeled JavaScript execution.

Real pages fetch part of their resources from script — URLs that are
"not explicitly defined within the code and require execution to be
generated" (paper §3).  We model execution instead of embedding a JS
engine: generated scripts carry ``/*@cc-fetch:URL*/`` directives that
only this module interprets.  Static HTML/CSS parsing — including the
CacheCatalyst server's — never sees them, reproducing exactly the
coverage gap the paper defers to future work.

Execution cost is modelled as a size-proportional delay (modern engines
parse+execute a few MB/s of cold script on mobile hardware), which is
what makes sync scripts expensive on the critical path.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..html.parser import ResourceKind
from ..workload.sitegen import JS_FETCH_DIRECTIVE

__all__ = ["ScriptModel", "extract_js_fetches", "kind_from_url"]

_EXTENSION_KINDS = {
    ".css": ResourceKind.STYLESHEET,
    ".js": ResourceKind.SCRIPT,
    ".mjs": ResourceKind.SCRIPT,
    ".png": ResourceKind.IMAGE,
    ".jpg": ResourceKind.IMAGE,
    ".jpeg": ResourceKind.IMAGE,
    ".gif": ResourceKind.IMAGE,
    ".webp": ResourceKind.IMAGE,
    ".svg": ResourceKind.IMAGE,
    ".ico": ResourceKind.IMAGE,
    ".woff": ResourceKind.FONT,
    ".woff2": ResourceKind.FONT,
    ".ttf": ResourceKind.FONT,
    ".mp4": ResourceKind.MEDIA,
    ".webm": ResourceKind.MEDIA,
    ".mp3": ResourceKind.MEDIA,
    ".json": ResourceKind.FETCH,
    ".html": ResourceKind.IFRAME,
}


def kind_from_url(url: str) -> ResourceKind:
    """Best-effort resource kind from the URL's extension."""
    path = url.split("?", 1)[0].split("#", 1)[0]
    dot = path.rfind(".")
    if dot == -1:
        return ResourceKind.FETCH  # extensionless: API-endpoint shaped
    return _EXTENSION_KINDS.get(path[dot:].lower(), ResourceKind.OTHER)


def extract_js_fetches(script_body: str) -> list[str]:
    """URLs a script fetches when executed.

    >>> extract_js_fetches('x;/*@cc-fetch:/api/a.json*/;y')
    ['/api/a.json']
    """
    urls: list[str] = []
    start = 0
    while True:
        index = script_body.find(JS_FETCH_DIRECTIVE, start)
        if index == -1:
            return urls
        begin = index + len(JS_FETCH_DIRECTIVE)
        end = script_body.find("*/", begin)
        if end == -1:
            return urls
        url = script_body[begin:end].strip()
        if url:
            urls.append(url)
        start = end + 2


@dataclass(frozen=True)
class ScriptModel:
    """Cost model for script parse+execute on the critical path."""

    #: seconds of execution per body byte (≈3 MB/s cold execution)
    exec_s_per_byte: float = 0.33e-6
    #: floor so even tiny scripts cost a scheduling quantum
    min_exec_s: float = 0.001
    #: cap so one huge bundle cannot dwarf network effects unrealistically
    max_exec_s: float = 0.250

    def execution_time(self, body_size: int) -> float:
        """Time to parse and run a script of ``body_size`` bytes.

        >>> ScriptModel().execution_time(0) >= 0.001
        True
        """
        cost = body_size * self.exec_s_per_byte
        return min(max(cost, self.min_exec_s), self.max_exec_s)
