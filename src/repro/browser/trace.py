"""Exporting page-load results as HAR-style traces.

A :class:`~repro.browser.metrics.PageLoadResult` is this package's
native timeline; downstream tooling (waterfall viewers, notebooks,
diffing scripts) usually wants the HTTP Archive (HAR 1.2) shape instead.
This module converts losslessly enough for analysis: entries carry start
time, duration, status, transfer size, and — in ``_cacheSource`` — which
layer satisfied the fetch (network / revalidated / http-cache /
sw-cache / pushed), which is the dimension this whole reproduction is
about.

Also includes a plain-text waterfall renderer for terminals.
"""

from __future__ import annotations

import datetime
import json
from typing import Optional

from ..server.site import WALL_EPOCH
from .metrics import FetchEvent, PageLoadResult

__all__ = ["to_har", "to_har_json", "render_waterfall"]

_HAR_VERSION = "1.2"
_CREATOR = {"name": "repro-cachecatalyst", "version": "0.1.0"}

_UTC = datetime.timezone.utc


def _iso8601(sim_seconds: float) -> str:
    """Simulated seconds -> ISO-8601 wall time (anchored at WALL_EPOCH).

    Always emits microseconds so the strings sort chronologically
    (variable-precision ISO strings do not).
    """
    moment = datetime.datetime.fromtimestamp(WALL_EPOCH + sim_seconds,
                                             tz=_UTC)
    return moment.strftime("%Y-%m-%dT%H:%M:%S.%f") + "Z"


def _entry(event: FetchEvent, page_ref: str) -> dict:
    elapsed_ms = event.elapsed_s * 1000.0
    return {
        "pageref": page_ref,
        "startedDateTime": _iso8601(event.start_s),
        "time": elapsed_ms,
        "request": {
            "method": "GET",
            "url": event.url,
            "httpVersion": "HTTP/1.1",
            "headers": [], "queryString": [], "cookies": [],
            "headersSize": -1, "bodySize": 0,
        },
        "response": {
            "status": event.status,
            "statusText": "",
            "httpVersion": "HTTP/1.1",
            "headers": [], "cookies": [],
            "content": {"size": event.bytes_down,
                        "mimeType": ""},
            "redirectURL": "",
            "headersSize": -1,
            "bodySize": event.bytes_down,
        },
        "cache": {},
        "timings": {"send": 0, "wait": elapsed_ms, "receive": 0},
        "_cacheSource": event.source.value,
        "_resourceKind": event.kind.value,
        "_blocking": event.blocking,
        "_rttsPaid": event.rtts_paid,
        "_discoveredVia": event.discovered_via,
        "_retries": event.retries,
        # sim-clock start: lets repro.obs.export.enrich_har line entries
        # up with trace spans without re-parsing startedDateTime
        "_startS": event.start_s,
    }


def to_har(result: PageLoadResult) -> dict:
    """Convert one page load to a HAR 1.2 dict.

    >>> from repro.browser.metrics import PageLoadResult
    >>> har = to_har(PageLoadResult(url="/", mode="m", start_s=0,
    ...                             onload_s=1.0))
    >>> har["log"]["version"]
    '1.2'
    """
    page_ref = f"{result.mode}:{result.url}"
    page = {
        "startedDateTime": _iso8601(result.start_s),
        "id": page_ref,
        "title": result.url,
        "pageTimings": {
            "onContentLoad": (None if result.first_render_s is None
                              else (result.first_render_s
                                    - result.start_s) * 1000.0),
            "onLoad": result.plt_ms,
        },
    }
    return {
        "log": {
            "version": _HAR_VERSION,
            "creator": dict(_CREATOR),
            "pages": [page],
            "entries": [_entry(event, page_ref)
                        for event in result.timeline()],
        }
    }


def to_har_json(result: PageLoadResult, indent: Optional[int] = 2) -> str:
    """The HAR as a JSON string (ready to drop into a HAR viewer)."""
    return json.dumps(to_har(result), indent=indent)


def render_waterfall(result: PageLoadResult, width: int = 64) -> str:
    """An ASCII waterfall of the load (for terminals and test output).

    Each row: offset bar spanning [start, end) on a shared time axis,
    then source and URL.
    """
    events = result.timeline()
    if not events:
        return f"{result.mode}: (no events)"
    t0 = result.start_s
    span = max(result.onload_s - t0, 1e-9)
    lines = [f"{result.mode}: {result.url}  "
             f"PLT={result.plt_ms:.1f}ms  "
             f"({len(events)} fetches, {result.bytes_down:,} bytes)"]
    for event in events:
        begin = int((event.start_s - t0) / span * width)
        end = max(begin + 1, int((event.end_s - t0) / span * width))
        bar = " " * begin + "#" * (end - begin)
        bar = bar.ljust(width)
        suffix = f"  [+{event.retries} retry]" if event.retries else ""
        lines.append(f"|{bar}| {event.source.value:<11} "
                     f"{event.url}{suffix}")
    return "\n".join(lines)
