"""The browser HTTP cache as a fetch-path layer.

Implements the status-quo flow of Figure 1b: before a request goes out,
consult the cache (RFC 9111 semantics from :mod:`repro.cache.policy`);
fresh entries are served locally, stale entries make the request
conditional, and 304 responses are folded back into the store.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..cache.entry import CacheEntry
from ..cache.policy import Disposition, evaluate
from ..cache.store import CacheStore
from ..http.messages import Request, Response

__all__ = ["BrowserCache", "CachePlan"]


@dataclass
class CachePlan:
    """What the cache layer decided for one request."""

    #: response served locally with no network at all (fresh hit)
    local_response: Optional[Response] = None
    #: request to send (possibly made conditional); None on local hits
    outgoing: Optional[Request] = None
    #: entry awaiting validation when the request is conditional
    validating: Optional[CacheEntry] = None
    #: the entry behind a local hit (lets callers with better knowledge —
    #: the Service Worker — veto the hit and demand revalidation)
    local_entry: Optional[CacheEntry] = None

    @property
    def is_local_hit(self) -> bool:
        return self.local_response is not None

    @property
    def is_revalidation(self) -> bool:
        return self.validating is not None


class BrowserCache:
    """Private HTTP cache with the standard request/response hooks."""

    def __init__(self, max_bytes: float = math.inf):
        self.store = CacheStore(max_bytes=max_bytes)
        self.fresh_hits = 0
        self.revalidations = 0
        self.validations_not_modified = 0

    def plan(self, request: Request, now: float) -> CachePlan:
        """Decide local hit / conditional request / plain request."""
        entry = self.store.lookup(request, now)
        decision = evaluate(request, entry, now)
        if decision.disposition is Disposition.FRESH:
            assert decision.entry is not None
            self.fresh_hits += 1
            return CachePlan(local_response=decision.entry.response.copy(),
                             local_entry=decision.entry)
        if decision.disposition is Disposition.STALE \
                and decision.entry is not None:
            plan = self.revalidation_plan(request, decision.entry)
            if plan is not None:
                return plan
        return CachePlan(outgoing=request.copy())

    def revalidation_plan(self, request: Request,
                          entry: CacheEntry) -> Optional[CachePlan]:
        """Build a conditional-request plan validating ``entry``.

        Returns None when the entry carries no validators at all.
        """
        conditional = request.copy()
        etag = entry.response.headers.get("ETag")
        if etag is not None:
            conditional.headers.set("If-None-Match", etag)
        last_modified = entry.response.headers.get("Last-Modified")
        if last_modified is not None:
            conditional.headers.set("If-Modified-Since", last_modified)
        if etag is None and last_modified is None:
            return None
        self.revalidations += 1
        return CachePlan(outgoing=conditional, validating=entry)

    def absorb(self, plan: CachePlan, request: Request, response: Response,
               request_time: float, response_time: float) -> Response:
        """Feed the network's answer back; returns the usable response.

        A 304 resurrects the validated entry (with freshened metadata); a
        200 replaces it.
        """
        if response.is_not_modified and plan.validating is not None:
            entry = plan.validating
            entry.freshen_from_304(response, request_time, response_time)
            self.validations_not_modified += 1
            return entry.response.copy()
        if response.status == 200:
            self.store.store(request, response, request_time, response_time)
        elif response.status in (404, 410):
            self.store.invalidate(request.url)
        return response

    def store_pushed(self, request: Request, response: Response,
                     now: float) -> None:
        """Store a server-pushed response (no prior plan exists)."""
        if response.status == 200:
            self.store.store(request, response, now, now)

    def clear(self) -> None:
        self.store.clear()

    @property
    def entry_count(self) -> int:
        return self.store.entry_count
