"""A real (wall-clock) headless page loader over asyncio sockets.

The discrete-event engine predicts PLT; this loader *measures* it: same
parse/discovery/caching logic, but every fetch is a real HTTP/1.1
exchange through :class:`~repro.http.aclient.AsyncHttpClient` against a
live origin, and the clock is the operating system's.

It exists for validation — the integration tests drive the identical
CatalystServer through both paths and check that the real measurements
reproduce the simulator's *orderings* (catalyst beats standard on warm
visits, etc.) — and as the measurement tool for anyone pointing this
package at their own localhost origin.

Scope notes: same-origin only (like the paper's clones), Service-Worker
behaviour host-emulated exactly as in the DES engine, JS execution
modeled by directive scanning (no JS engine in the loop).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Optional

from ..html.css import extract_css_refs
from ..html.parser import (ResourceKind, ResourceRef, extract_resources,
                           parse_html)
from ..html.rewrite import has_sw_registration
from ..http.aclient import AsyncHttpClient
from ..http.messages import Request, Response
from .cache_layer import BrowserCache
from .js import extract_js_fetches, kind_from_url
from .metrics import FetchEvent, FetchSource, PageLoadResult
from .sw_host import ServiceWorkerHost

__all__ = ["RealBrowserSession", "RealLoaderConfig"]


@dataclass(frozen=True)
class RealLoaderConfig:
    """Feature switches for the wall-clock loader."""

    use_http_cache: bool = True
    use_service_worker: bool = False
    connections_per_origin: int = 6
    request_timeout_s: float = 30.0


@dataclass
class RealBrowserSession:
    """Client state persisting across real visits to one origin."""

    config: RealLoaderConfig = field(default_factory=RealLoaderConfig)

    def __post_init__(self) -> None:
        self.http_cache = BrowserCache()
        self.sw = ServiceWorkerHost()

    async def load(self, base_url: str, page_path: str = "/index.html",
                   mode_label: str = "real") -> PageLoadResult:
        """Fetch and 'render' one page; returns a wall-clock timeline."""
        loader = _RealPageLoad(session=self, base_url=base_url,
                               mode_label=mode_label)
        async with AsyncHttpClient(
                connections_per_origin=self.config.connections_per_origin,
                timeout_s=self.config.request_timeout_s) as client:
            return await loader.run(client, page_path)


class _RealPageLoad:
    def __init__(self, session: RealBrowserSession, base_url: str,
                 mode_label: str):
        self.session = session
        self.config = session.config
        self.base_url = base_url.rstrip("/")
        self.mode_label = mode_label
        self.events: list[FetchEvent] = []
        self._t0 = 0.0
        self._in_flight: dict[str, asyncio.Task] = {}
        self._blocking_done = 0.0

    def _now(self) -> float:
        return time.monotonic() - self._t0

    async def run(self, client: AsyncHttpClient,
                  page_path: str) -> PageLoadResult:
        self._t0 = time.monotonic()
        html = await self._acquire(client, ResourceRef(
            url=page_path, kind=ResourceKind.DOCUMENT, blocking=True,
            discovered_by=""), is_document=True)
        markup = html.body.decode(errors="replace")
        if self.config.use_service_worker:
            self.session.sw.observe_registration(
                has_sw_registration(markup))
        refs = extract_resources(parse_html(markup), base_url="")
        await asyncio.gather(*[self._fetch_tree(client, ref)
                               for ref in refs])
        onload = self._now()
        return PageLoadResult(
            url=page_path, mode=self.mode_label, start_s=0.0,
            onload_s=onload, events=self.events,
            first_render_s=self._blocking_done or onload)

    async def _fetch_tree(self, client: AsyncHttpClient,
                          ref: ResourceRef) -> None:
        response = await self._acquire_dedup(client, ref)
        if response is None or response.status != 200:
            return
        if ref.blocking:
            self._blocking_done = max(self._blocking_done, self._now())
        children: list[ResourceRef] = []
        if ref.kind is ResourceKind.STYLESHEET:
            body = response.body.decode(errors="replace")
            for css_ref in extract_css_refs(body):
                kind = (ResourceKind.STYLESHEET
                        if css_ref.kind == "import"
                        else ResourceKind.FONT if css_ref.kind == "font"
                        else ResourceKind.IMAGE)
                children.append(ResourceRef(url=css_ref.url, kind=kind,
                                            blocking=False,
                                            discovered_by=ref.url))
        elif ref.kind is ResourceKind.SCRIPT:
            body = response.body.decode(errors="replace")
            children = [ResourceRef(url=url, kind=kind_from_url(url),
                                    blocking=False, discovered_by=ref.url)
                        for url in extract_js_fetches(body)]
        if children:
            await asyncio.gather(*[self._fetch_tree(client, child)
                                   for child in children])

    async def _acquire_dedup(self, client: AsyncHttpClient,
                             ref: ResourceRef) -> Optional[Response]:
        existing = self._in_flight.get(ref.url)
        if existing is not None:
            return await asyncio.shield(existing)
        task = asyncio.ensure_future(self._acquire(client, ref))
        self._in_flight[ref.url] = task
        return await task

    async def _acquire(self, client: AsyncHttpClient, ref: ResourceRef,
                       is_document: bool = False) -> Response:
        start = self._now()
        path_request = Request(method="GET", url=ref.url)

        if self.config.use_service_worker and not is_document:
            hit = self.session.sw.intercept(path_request, self._now())
            if hit is not None:
                self._record(ref, start, hit, FetchSource.SW_CACHE, 0)
                return hit

        plan = None
        outgoing = path_request
        if self.config.use_http_cache:
            plan = self.session.http_cache.plan(path_request, self._now())
            if plan.is_local_hit:
                response = plan.local_response
                self._record(ref, start, response,
                             FetchSource.HTTP_CACHE, 0)
                if self.config.use_service_worker:
                    self.session.sw.on_response(path_request, response,
                                                self._now())
                return response
            outgoing = plan.outgoing

        wire_request = outgoing.copy()
        wire_request.url = self.base_url + ref.url
        request_time = self._now()
        result = await client.request(wire_request)
        response = result.response
        response_time = self._now()

        usable = response
        if plan is not None:
            usable = self.session.http_cache.absorb(
                plan, path_request, response, request_time, response_time)
        if self.config.use_service_worker:
            self.session.sw.on_response(path_request, usable, self._now())
        source = (FetchSource.REVALIDATED if response.is_not_modified
                  else FetchSource.NETWORK)
        self._record(ref, start, usable, source,
                     len(response.body) + response.headers.wire_size(),
                     status=response.status)
        return usable

    def _record(self, ref: ResourceRef, start: float, response: Response,
                source: FetchSource, bytes_down: int,
                status: int = 200) -> None:
        etag = response.etag
        self.events.append(FetchEvent(
            url=ref.url, kind=ref.kind, source=source, start_s=start,
            end_s=self._now(), status=status, bytes_down=bytes_down,
            blocking=ref.blocking,
            discovered_via=ref.discovered_by or "html",
            served_etag=etag.opaque if etag else ""))
