"""The browser's network stack over the simulated link.

A :class:`NetworkClient` owns the per-origin connection pool (browsers cap
parallel connections per origin — 6 in every major engine) and turns a
request into a DES process: acquire a slot, reuse or set up a connection,
pay the RTT and transfer time, hand the request to the origin's handler,
and return its response.

The origin handler is a plain callable ``handler(request, at_time) ->
Response`` — the same objects :mod:`repro.server` exposes — so the whole
HTTP exchange happens in-process with zero serialization while the *time*
it would take on the modelled network elapses on the simulator clock.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..http.messages import Request, Response
from ..netsim.faults import (FaultKind, InjectedFault, InjectedReset,
                             backoff_delay)
from ..netsim.link import Link
from ..netsim.sim import Resource, Simulator
from ..netsim.tcp import Connection, ConnectionPolicy, slow_start_extra_rtts

__all__ = ["NetworkClient", "OriginHandler", "ExchangeRecord",
           "CONNECTIONS_PER_ORIGIN", "OriginUnreachable",
           "FetchTimeout", "FetchFailed",
           "DEFAULT_FAULT_GUARD_TIMEOUT_S"]

CONNECTIONS_PER_ORIGIN = 6

#: watchdog used when a fault plan is active but no explicit per-request
#: timeout was configured — a LOSS would otherwise hang the load forever
DEFAULT_FAULT_GUARD_TIMEOUT_S = 30.0


class OriginUnreachable(Exception):
    """The origin cannot be reached (offline mode, outage).

    Raised by origin handlers to model unreachability; the page loader
    lets the Service Worker answer from cache where it can (paper §3's
    offline capability).
    """


class FetchTimeout(Exception):
    """One attempt's watchdog expired before a response arrived."""


class FetchFailed(Exception):
    """Every attempt within the retry budget failed.

    Carries the URL, how many attempts were made, and the last failure.
    """

    def __init__(self, url: str, attempts: int, cause: Exception):
        super().__init__(f"{url} failed after {attempts} attempt(s): "
                         f"{cause}")
        self.url = url
        self.attempts = attempts
        self.cause = cause


OriginHandler = Callable[[Request, float], Response]


@dataclass
class ExchangeRecord:
    """Timing and accounting for one network exchange."""

    url: str
    start_s: float
    end_s: float
    status: int
    response_bytes: int
    new_connection: bool
    queued_s: float = 0.0
    #: wire attempts this exchange took (1 = no retries)
    attempts: int = 1

    @property
    def elapsed_s(self) -> float:
        return self.end_s - self.start_s


#: HTTP/2 default SETTINGS_MAX_CONCURRENT_STREAMS in common servers
H2_MAX_STREAMS = 100


@dataclass
class NetworkClient:
    """Connection-pooled access to one origin over one access link.

    Two transport flavours:

    - HTTP/1.1 (default): up to ``connections_per_origin`` parallel
      connections, each carrying one request at a time, each paying its
      own TCP/TLS setup.
    - HTTP/2 (``multiplexed=True``): one connection, one handshake, up to
      ``max_streams`` concurrent request streams.  Bytes still share the
      access link either way — multiplexing removes per-connection
      queueing and repeated handshakes, not bandwidth.
    """

    sim: Simulator
    link: Link
    handler: OriginHandler
    policy: ConnectionPolicy = field(default_factory=ConnectionPolicy)
    connections_per_origin: int = CONNECTIONS_PER_ORIGIN
    #: server processing delay before the response leaves the origin
    server_think_s: float = 0.005
    #: HTTP/2-style multiplexing over a single connection
    multiplexed: bool = False
    max_streams: int = H2_MAX_STREAMS
    #: per-attempt watchdog; ``inf`` disables it (unless a fault plan is
    #: active, in which case :data:`DEFAULT_FAULT_GUARD_TIMEOUT_S` applies)
    request_timeout_s: float = math.inf
    #: extra attempts allowed after the first one fails
    max_retries: int = 3
    #: capped-exponential backoff between attempts
    backoff_base_s: float = 0.25
    backoff_cap_s: float = 4.0

    def __post_init__(self) -> None:
        capacity = self.max_streams if self.multiplexed \
            else self.connections_per_origin
        self._slots = Resource(self.sim, capacity)
        self._idle: list[Connection] = []
        self._h2_connection: Connection | None = None
        self._h2_ready: "Event | None" = None
        self.exchanges: list[ExchangeRecord] = []
        self.connections_opened = 0
        #: attempts re-issued after a failure (visible in metrics/traces)
        self.retries = 0
        #: attempt failures observed (timeouts + injected faults)
        self.faults_seen = 0

    # -- the fetch process -----------------------------------------------------
    def exchange(self, request: Request,
                 think_s: Optional[float] = None, span=None):
        """DES process: perform one HTTP exchange, return the Response.

        Usage inside another process::

            response = yield from client.exchange(request)

        Resilience: each wire attempt is raced against the per-request
        watchdog and subject to the link's :class:`FaultPlan` (if any).
        Failed attempts are retried with capped exponential backoff and
        deterministic jitter until the retry budget runs out, at which
        point :class:`FetchFailed` is raised.  The fault-free,
        no-timeout configuration takes the exact code path (and timing)
        it always did.

        ``span`` parents the exchange in a trace; each wire attempt gets
        a child span, each retry backoff an instant, so a Perfetto view
        shows exactly where a lossy link spent the load's time.
        """
        tracer = self.sim.tracer
        queue_start = self.sim.now
        grant = self._slots.request()
        yield grant
        xspan = tracer.begin("net.exchange", "net", parent=span,
                             args={"url": request.url}) \
            if tracer.enabled else None
        try:
            start = self.sim.now
            queued = start - queue_start
            if xspan is not None and queued > 0:
                xspan.set("queued_s", queued)
            plan = getattr(self.link, "fault_plan", None)
            if plan is not None and not plan.injects_anything:
                plan = None
            timeout_s = self.request_timeout_s
            if plan is not None and math.isinf(timeout_s):
                timeout_s = DEFAULT_FAULT_GUARD_TIMEOUT_S
            attempt = 0
            while True:
                decision = (plan.decide(request.url, attempt)
                            if plan is not None else None)
                aspan = tracer.begin(
                    "net.attempt", "net", parent=xspan,
                    args={"attempt": attempt}) if tracer.enabled else None
                try:
                    if decision is None and math.isinf(timeout_s):
                        outcome = yield from self._attempt(
                            request, think_s, None, aspan)
                    else:
                        outcome = yield from self._guarded_attempt(
                            request, think_s, decision, timeout_s, aspan)
                    if aspan is not None:
                        aspan.end()
                    break
                except (InjectedFault, FetchTimeout) as exc:
                    self.faults_seen += 1
                    if aspan is not None:
                        aspan.set("error", type(exc).__name__).end()
                    if attempt >= self.max_retries:
                        raise FetchFailed(request.url, attempt + 1,
                                          exc) from exc
                    seed = plan.seed if plan is not None else 0
                    delay = backoff_delay(
                        attempt, self.backoff_base_s, self.backoff_cap_s,
                        seed, request.url)
                    if tracer.enabled:
                        tracer.instant("net.retry", "net", parent=xspan,
                                       args={"attempt": attempt,
                                             "backoff_s": delay})
                    yield self.sim.timeout(delay)
                    self.retries += 1
                    attempt += 1
            response, response_bytes, is_new = outcome
            self.exchanges.append(ExchangeRecord(
                url=request.url, start_s=start, end_s=self.sim.now,
                status=response.status,
                response_bytes=response_bytes,
                new_connection=is_new, queued_s=queued,
                attempts=attempt + 1))
            if xspan is not None:
                xspan.annotate(status=response.status,
                               attempts=attempt + 1,
                               new_connection=is_new).end()
            return response
        except BaseException as exc:
            if xspan is not None:
                xspan.set("error", type(exc).__name__).end()
            raise
        finally:
            self._slots.release()

    def _guarded_attempt(self, request: Request, think_s: Optional[float],
                         decision, timeout_s: float, span=None):
        """Process: run one attempt as a child, raced against a watchdog.

        A lost request (or a stall that never resumes) produces dead
        silence; the watchdog converts that silence into a
        :class:`FetchTimeout` the retry loop can act on.
        """
        attempt_proc = self.sim.process(
            self._attempt(request, think_s, decision, span),
            name=f"attempt:{request.url}")
        waits = [attempt_proc]
        if not math.isinf(timeout_s):
            waits.append(self.sim.timeout(timeout_s))
        yield self.sim.any_of(waits)  # re-raises the attempt's failure
        if not attempt_proc.triggered:
            attempt_proc.interrupt("request watchdog")
            raise FetchTimeout(
                f"no response for {request.url} within {timeout_s:g}s")
        if not attempt_proc.ok:
            raise attempt_proc.value
        return attempt_proc.value

    def _attempt(self, request: Request, think_s: Optional[float],
                 decision, span=None):
        """Process: one wire attempt; returns (response, bytes, is_new).

        The response size is unknown until the handler runs, so the
        exchange is phased: handshake, upstream + server think, run the
        handler at arrival time, then downstream sized by the actual
        response.  Any failure (injected fault, watchdog interrupt)
        discards the connection — a broken exchange's connection is
        never reused.
        """
        tracer = self.sim.tracer
        connection, is_new = self._checkout()
        try:
            if not connection.established:
                cspan = tracer.begin("net.connect", "net", parent=span) \
                    if tracer.enabled else None
                yield from self._establish(connection)
                if cspan is not None:
                    cspan.end()
            req_extra = max(0, request.wire_size()
                            - self.policy.request_bytes)
            yield from self.link.send_upstream(
                self.policy.request_bytes + req_extra, span=span)
            if decision is not None and decision.kind is FaultKind.LOSS:
                # the request (or its response) evaporated: dead silence
                # until the watchdog interrupts this process
                if tracer.enabled:
                    tracer.instant("fault.loss", "netsim", parent=span,
                                   args={"url": request.url})
                yield self.sim.event()
                raise AssertionError("lost request resumed")  # unreachable
            think = self.server_think_s if think_s is None else think_s
            if think > 0:
                yield self.sim.timeout(think)
            # The handler runs synchronously at arrival time; hand the
            # attempt span across the call boundary so a traced origin
            # (CatalystServer) parents its server span correctly.
            if tracer.enabled:
                with tracer.parenting(span):
                    response = self.handler(request, self.sim.now)
            else:
                response = self.handler(request, self.sim.now)
            body_bytes = response.transfer_size
            header_bytes = self.policy.response_header_bytes + max(
                0, response.headers.wire_size()
                - self.policy.response_header_bytes)
            if self.policy.slow_start and body_bytes > 0:
                extra = slow_start_extra_rtts(body_bytes, self.policy)
                if extra > 0:
                    yield self.sim.timeout(
                        self.link.conditions.rtt_s * extra)
            total = header_bytes + body_bytes
            if decision is None:
                yield from self.link.send_downstream(total, span=span)
            else:
                yield from self.link.send_downstream_faulted(
                    total, decision, span=span)
            connection.requests_served += 1
            self._checkin(connection)
            return response, total, is_new
        except BaseException:
            self._discard(connection)
            raise

    def warm_up(self, count: int):
        """Process: pre-establish ``count`` idle connections (preconnect).

        Browsers speculatively open connections they expect to need;
        modelling it lets late JS-triggered fetches skip handshakes.
        No-op under HTTP/2 (one connection covers everything).
        """
        if self.multiplexed:
            return
        fresh = []
        for _ in range(count):
            self.connections_opened += 1
            fresh.append(Connection(sim=self.sim, link=self.link,
                                    policy=self.policy))
        for connection in fresh:
            yield from connection.setup()
            self._idle.append(connection)

    # -- connection pool -----------------------------------------------------
    def _checkout(self) -> tuple[Connection, bool]:
        if self.multiplexed:
            if self._h2_connection is None:
                self.connections_opened += 1
                self._h2_connection = Connection(
                    sim=self.sim, link=self.link, policy=self.policy)
                return self._h2_connection, True
            return self._h2_connection, False
        if self._idle:
            return self._idle.pop(), False
        self.connections_opened += 1
        return Connection(sim=self.sim, link=self.link,
                          policy=self.policy), True

    def _establish(self, connection: Connection):
        """Process: handshake once; concurrent h2 streams wait, not race."""
        if not self.multiplexed:
            yield from connection.setup()
            return
        if self._h2_ready is None:
            self._h2_ready = self.sim.event()
            yield from connection.setup()
            self._h2_ready.succeed()
        elif not self._h2_ready.triggered:
            yield self._h2_ready
        # else: handshake already done

    def _checkin(self, connection: Connection) -> None:
        if not self.multiplexed:
            self._idle.append(connection)

    def _discard(self, connection: Connection) -> None:
        """Drop a connection whose exchange broke mid-flight.

        HTTP/1.1: simply never checked back into the idle pool.  HTTP/2:
        the shared connection is torn down so the next attempt
        re-handshakes; streams still waiting on its handshake see the
        failure (and retry through their own budgets).
        """
        if not self.multiplexed:
            return
        if self._h2_connection is connection:
            self._h2_connection = None
            ready, self._h2_ready = self._h2_ready, None
            if ready is not None and not ready.triggered:
                ready.fail(InjectedReset(
                    "connection torn down mid-handshake"))

    # -- accounting -------------------------------------------------------------
    @property
    def bytes_downloaded(self) -> int:
        return sum(record.response_bytes for record in self.exchanges)

    @property
    def request_count(self) -> int:
        return len(self.exchanges)
