"""The browser's network stack over the simulated link.

A :class:`NetworkClient` owns the per-origin connection pool (browsers cap
parallel connections per origin — 6 in every major engine) and turns a
request into a DES process: acquire a slot, reuse or set up a connection,
pay the RTT and transfer time, hand the request to the origin's handler,
and return its response.

The origin handler is a plain callable ``handler(request, at_time) ->
Response`` — the same objects :mod:`repro.server` exposes — so the whole
HTTP exchange happens in-process with zero serialization while the *time*
it would take on the modelled network elapses on the simulator clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..http.messages import Request, Response
from ..netsim.link import Link
from ..netsim.sim import Resource, Simulator
from ..netsim.tcp import Connection, ConnectionPolicy, slow_start_extra_rtts

__all__ = ["NetworkClient", "OriginHandler", "ExchangeRecord",
           "CONNECTIONS_PER_ORIGIN", "OriginUnreachable"]

CONNECTIONS_PER_ORIGIN = 6


class OriginUnreachable(Exception):
    """The origin cannot be reached (offline mode, outage).

    Raised by origin handlers to model unreachability; the page loader
    lets the Service Worker answer from cache where it can (paper §3's
    offline capability).
    """

OriginHandler = Callable[[Request, float], Response]


@dataclass
class ExchangeRecord:
    """Timing and accounting for one network exchange."""

    url: str
    start_s: float
    end_s: float
    status: int
    response_bytes: int
    new_connection: bool
    queued_s: float = 0.0

    @property
    def elapsed_s(self) -> float:
        return self.end_s - self.start_s


#: HTTP/2 default SETTINGS_MAX_CONCURRENT_STREAMS in common servers
H2_MAX_STREAMS = 100


@dataclass
class NetworkClient:
    """Connection-pooled access to one origin over one access link.

    Two transport flavours:

    - HTTP/1.1 (default): up to ``connections_per_origin`` parallel
      connections, each carrying one request at a time, each paying its
      own TCP/TLS setup.
    - HTTP/2 (``multiplexed=True``): one connection, one handshake, up to
      ``max_streams`` concurrent request streams.  Bytes still share the
      access link either way — multiplexing removes per-connection
      queueing and repeated handshakes, not bandwidth.
    """

    sim: Simulator
    link: Link
    handler: OriginHandler
    policy: ConnectionPolicy = field(default_factory=ConnectionPolicy)
    connections_per_origin: int = CONNECTIONS_PER_ORIGIN
    #: server processing delay before the response leaves the origin
    server_think_s: float = 0.005
    #: HTTP/2-style multiplexing over a single connection
    multiplexed: bool = False
    max_streams: int = H2_MAX_STREAMS

    def __post_init__(self) -> None:
        capacity = self.max_streams if self.multiplexed \
            else self.connections_per_origin
        self._slots = Resource(self.sim, capacity)
        self._idle: list[Connection] = []
        self._h2_connection: Connection | None = None
        self._h2_ready: "Event | None" = None
        self.exchanges: list[ExchangeRecord] = []
        self.connections_opened = 0

    # -- the fetch process -----------------------------------------------------
    def exchange(self, request: Request,
                 think_s: Optional[float] = None):
        """DES process: perform one HTTP exchange, return the Response.

        Usage inside another process::

            response = yield from client.exchange(request)
        """
        queue_start = self.sim.now
        grant = self._slots.request()
        yield grant
        try:
            start = self.sim.now
            queued = start - queue_start
            connection, is_new = self._checkout()
            # The response size is unknown until the handler runs, so the
            # exchange is phased: handshake, upstream + server think, run
            # the handler at arrival time, then downstream sized by the
            # actual response.
            if not connection.established:
                yield from self._establish(connection)
            req_extra = max(0, request.wire_size()
                            - self.policy.request_bytes)
            yield from self.link.send_upstream(
                self.policy.request_bytes + req_extra)
            think = self.server_think_s if think_s is None else think_s
            if think > 0:
                yield self.sim.timeout(think)
            response = self.handler(request, self.sim.now)
            body_bytes = response.transfer_size
            header_bytes = self.policy.response_header_bytes + max(
                0, response.headers.wire_size()
                - self.policy.response_header_bytes)
            if self.policy.slow_start and body_bytes > 0:
                extra = slow_start_extra_rtts(body_bytes, self.policy)
                if extra > 0:
                    yield self.sim.timeout(
                        self.link.conditions.rtt_s * extra)
            yield from self.link.send_downstream(header_bytes + body_bytes)
            connection.requests_served += 1
            self._checkin(connection)
            self.exchanges.append(ExchangeRecord(
                url=request.url, start_s=start, end_s=self.sim.now,
                status=response.status,
                response_bytes=header_bytes + body_bytes,
                new_connection=is_new, queued_s=queued))
            return response
        finally:
            self._slots.release()

    def warm_up(self, count: int):
        """Process: pre-establish ``count`` idle connections (preconnect).

        Browsers speculatively open connections they expect to need;
        modelling it lets late JS-triggered fetches skip handshakes.
        No-op under HTTP/2 (one connection covers everything).
        """
        if self.multiplexed:
            return
        fresh = []
        for _ in range(count):
            self.connections_opened += 1
            fresh.append(Connection(sim=self.sim, link=self.link,
                                    policy=self.policy))
        for connection in fresh:
            yield from connection.setup()
            self._idle.append(connection)

    # -- connection pool -----------------------------------------------------
    def _checkout(self) -> tuple[Connection, bool]:
        if self.multiplexed:
            if self._h2_connection is None:
                self.connections_opened += 1
                self._h2_connection = Connection(
                    sim=self.sim, link=self.link, policy=self.policy)
                return self._h2_connection, True
            return self._h2_connection, False
        if self._idle:
            return self._idle.pop(), False
        self.connections_opened += 1
        return Connection(sim=self.sim, link=self.link,
                          policy=self.policy), True

    def _establish(self, connection: Connection):
        """Process: handshake once; concurrent h2 streams wait, not race."""
        if not self.multiplexed:
            yield from connection.setup()
            return
        if self._h2_ready is None:
            self._h2_ready = self.sim.event()
            yield from connection.setup()
            self._h2_ready.succeed()
        elif not self._h2_ready.triggered:
            yield self._h2_ready
        # else: handshake already done

    def _checkin(self, connection: Connection) -> None:
        if not self.multiplexed:
            self._idle.append(connection)

    # -- accounting -------------------------------------------------------------
    @property
    def bytes_downloaded(self) -> int:
        return sum(record.response_bytes for record in self.exchanges)

    @property
    def request_count(self) -> int:
        return len(self.exchanges)
