"""Cached response entries."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..http.etag import ETag
from ..http.messages import Response

__all__ = ["CacheEntry"]


@dataclass
class CacheEntry:
    """One stored response plus the metadata freshness math needs.

    ``request_time``/``response_time`` are the RFC 9111 §4.2.3 clock points
    (when the request was sent / the response was received), in the same
    timebase the cache is queried with (the simulator clock or wall clock).
    """

    url: str
    response: Response
    request_time: float
    response_time: float
    #: request headers the response varies on (header name -> value)
    vary_values: dict[str, str] = field(default_factory=dict)
    #: bookkeeping for LRU eviction
    last_used: float = 0.0
    hits: int = 0

    def __post_init__(self) -> None:
        if self.response_time < self.request_time:
            raise ValueError("response_time precedes request_time")
        if not self.last_used:
            self.last_used = self.response_time

    @property
    def etag(self) -> Optional[ETag]:
        return self.response.etag

    @property
    def size_bytes(self) -> int:
        """Approximate footprint: body (as billed on the wire) plus headers.

        Uses :attr:`Response.transfer_size` so simulated large resources
        count at their declared size for eviction budgeting.
        """
        return self.response.transfer_size + self.response.headers.wire_size()

    def freshen_from_304(self, validated: Response,
                         request_time: float, response_time: float) -> None:
        """Fold a 304's headers into the stored response (RFC 9111 §4.3.4).

        The 304 carries updated metadata (Date, Cache-Control, ETag...);
        the body stays.
        """
        for name, _ in list(validated.headers.items()):
            if name.lower() in ("content-length", "transfer-encoding"):
                continue
            self.response.headers.set(name, validated.headers[name])
        self.request_time = request_time
        self.response_time = response_time

    def __repr__(self) -> str:
        return (f"<CacheEntry {self.url} {len(self.response.body)}B "
                f"etag={self.response.headers.get('ETag')!r}>")
