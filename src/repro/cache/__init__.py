"""Client-side caching substrate.

- :mod:`policy` — RFC 9111 decision logic (freshness, age, revalidation)
- :class:`CacheStore` — LRU store with Vary support
- :class:`CacheEntry` — stored response + metadata
- :class:`ServiceWorkerCache` — the ETag-indexed CacheCatalyst cache
"""

from .entry import CacheEntry
from .policy import (Decision, Disposition, current_age, evaluate,
                     freshness_lifetime, may_store)
from .service_worker import ServiceWorkerCache
from .store import CacheStore

__all__ = [
    "CacheEntry", "CacheStore", "ServiceWorkerCache",
    "Decision", "Disposition",
    "may_store", "freshness_lifetime", "current_age", "evaluate",
]
