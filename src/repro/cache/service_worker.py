"""The Service-Worker cache (client half of CacheCatalyst's storage).

Unlike the HTTP cache, the SW cache (paper §3) ignores freshness entirely:

- it stores **every** response that is not marked ``no-store``, whatever
  its ``max-age``/``no-cache`` headers say, and
- it serves an entry iff the entry's ETag equals the expected ETag the
  server stapled into ``X-Etag-Config`` — never because of a TTL.

That is the whole trick: freshness is decided by a server-supplied fact
(the current ETag) rather than a developer-supplied guess (the TTL).
"""

from __future__ import annotations

import math
from typing import Optional

from ..http.etag import ETag
from ..http.messages import Request, Response
from ..obs.trace import NULL_TRACER
from .entry import CacheEntry
from .store import CacheStore

__all__ = ["ServiceWorkerCache"]


class ServiceWorkerCache:
    """ETag-indexed response cache for the cache Service Worker."""

    def __init__(self, max_bytes: float = math.inf):
        self._store = CacheStore(max_bytes=max_bytes)
        #: hits served without network because ETags matched
        self.etag_hits = 0
        #: lookups that had a cached body but a stale ETag
        self.etag_misses = 0
        #: rebound by the SW host when a trace is active
        self.tracer = NULL_TRACER

    # -- write path --------------------------------------------------------
    def put(self, request: Request, response: Response, now: float) -> bool:
        """Cache the response unless it is ``no-store``; True if stored."""
        if request.method != "GET":
            return False
        if response.cache_control.no_store:
            return False
        if not response.ok:
            return False
        # Strip freshness directives' influence by storing verbatim; the SW
        # never consults them again.
        self._store.store(request, _storable_copy(response), now, now)
        return True

    # -- read path -----------------------------------------------------------
    def match(self, request: Request, expected: Optional[ETag],
              now: float) -> Optional[Response]:
        """Serve from cache iff the stored ETag weak-matches ``expected``."""
        if expected is None or not expected.opaque:
            # An empty stapled tag vouches for nothing (it can appear when
            # a damaged header is salvaged); treat it as absent.
            return None
        entry = self._store.lookup(request, now)
        if entry is None:
            return None
        stored = entry.etag
        if stored is not None and stored.weak_compare(expected):
            self.etag_hits += 1
            if self.tracer.enabled:
                self.tracer.instant(
                    "sw.etag_hit", "sw",
                    parent=self.tracer.current_parent,
                    args={"url": request.path, "etag": expected.opaque},
                    at=now)
            return entry.response.copy()
        self.etag_misses += 1
        if self.tracer.enabled:
            self.tracer.instant(
                "sw.etag_miss", "sw",
                parent=self.tracer.current_parent,
                args={"url": request.path,
                      "stored": stored.opaque if stored else "",
                      "expected": expected.opaque},
                at=now)
        return None

    def peek(self, url: str) -> Optional[CacheEntry]:
        """Entry stored for ``url`` (any variant), without LRU side effects."""
        for entry in self._store.entries():
            if entry.url == url:
                return entry
        return None

    def stored_etag(self, url: str) -> Optional[ETag]:
        entry = self.peek(url)
        return entry.etag if entry else None

    def invalidate(self, url: str) -> int:
        return self._store.invalidate(url)

    def clear(self) -> None:
        self._store.clear()

    @property
    def entry_count(self) -> int:
        return self._store.entry_count

    @property
    def byte_size(self) -> int:
        return self._store.byte_size

    def __contains__(self, url: str) -> bool:
        return url in self._store


def _storable_copy(response: Response) -> Response:
    """Copy a response for SW storage.

    The SW stores responses that the HTTP cache would refuse (``no-cache``,
    short ``max-age``); storing verbatim keeps diagnostics honest, and the
    store's own ``may_store`` is bypassed by ensuring the copy is always
    acceptable to it.
    """
    copy = response.copy()
    # CacheStore.store consults may_store(); make the stored representation
    # acceptable while preserving the original directives for inspection.
    cc = copy.headers.get("Cache-Control")
    if cc is not None:
        copy.headers.set("X-Original-Cache-Control", cc)
        copy.headers.remove("Cache-Control")
    return copy
