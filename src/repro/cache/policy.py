"""RFC 9111 cache decision logic.

Pure functions over message objects and a caller-supplied clock, so the
same logic serves the simulated browser cache, the Service-Worker cache,
and the real-socket integration path.

The decisions this module renders are exactly the ones whose costs the
paper is about:

- ``FRESH``   -> serve from cache, **zero RTTs**
- ``STALE``   -> conditional request, **one RTT minimum** (the waste
  CacheCatalyst eliminates when content hasn't changed)
- ``MISS`` / ``UNCACHEABLE`` -> full fetch
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..http.cache_control import parse_cache_control
from ..http.dates import parse_http_date
from ..http.messages import Request, Response
from .entry import CacheEntry

__all__ = [
    "Disposition", "Decision",
    "may_store", "freshness_lifetime", "current_age", "evaluate",
    "HEURISTIC_FRESHNESS_FRACTION",
]

#: RFC 9111 §4.2.2 heuristic: a fraction of (Date - Last-Modified).
HEURISTIC_FRESHNESS_FRACTION = 0.1

#: statuses a cache may store by default (RFC 9111 §3, heuristic set)
_CACHEABLE_STATUSES = {200, 203, 204, 206, 300, 301, 308, 404, 405, 410, 414}

_UNSAFE_METHODS = {"POST", "PUT", "DELETE", "PATCH"}


class Disposition(enum.Enum):
    """What the cache should do for a lookup."""

    FRESH = "fresh"            # serve stored response, no network
    STALE = "stale"            # revalidate (conditional request)
    MISS = "miss"              # nothing stored, full fetch
    UNCACHEABLE = "uncacheable"  # bypass cache entirely


@dataclass(frozen=True)
class Decision:
    disposition: Disposition
    entry: Optional[CacheEntry] = None
    #: freshness lifetime that applied (diagnostics)
    lifetime_s: Optional[float] = None
    #: age at evaluation time (diagnostics)
    age_s: Optional[float] = None

    @property
    def needs_network(self) -> bool:
        return self.disposition is not Disposition.FRESH


def may_store(request: Request, response: Response) -> bool:
    """Whether a private cache may store this exchange (RFC 9111 §3)."""
    if request.method != "GET":
        return False
    cc = response.cache_control
    if cc.no_store:
        return False
    req_cc = parse_cache_control(
        request.headers.get_joined("Cache-Control") or "")
    if req_cc.no_store:
        return False
    if "*" in (response.headers.get("Vary") or ""):
        return False
    if response.status in _CACHEABLE_STATUSES:
        return True
    # Other statuses are only cacheable with explicit freshness info.
    return (cc.max_age is not None or cc.public
            or "Expires" in response.headers)


def freshness_lifetime(response: Response,
                       shared: bool = False) -> Optional[float]:
    """Freshness lifetime in seconds (RFC 9111 §4.2.1).

    Returns ``None`` when no explicit or heuristic lifetime exists, which
    forces revalidation on every use (the ``no-cache``-like worst case).
    """
    cc = response.cache_control
    if shared and cc.s_maxage is not None:
        return float(cc.s_maxage)
    if cc.max_age is not None:
        return float(cc.max_age)
    expires_raw = response.headers.get("Expires")
    date_raw = response.headers.get("Date")
    if expires_raw is not None and date_raw is not None:
        try:
            return parse_http_date(expires_raw) - parse_http_date(date_raw)
        except ValueError:
            return 0.0  # invalid Expires means "already expired"
    last_modified = response.headers.get("Last-Modified")
    if last_modified is not None and date_raw is not None:
        try:
            delta = parse_http_date(date_raw) - parse_http_date(last_modified)
        except ValueError:
            return None
        if delta > 0:
            return HEURISTIC_FRESHNESS_FRACTION * delta
    return None


def current_age(entry: CacheEntry, now: float) -> float:
    """Age of the stored response (simplified RFC 9111 §4.2.3).

    In the simulator the origin and client share one clock, so apparent-age
    correction collapses to resident time plus the Age header if present.
    """
    age_header = entry.response.headers.get("Age")
    initial_age = 0.0
    if age_header is not None and age_header.strip().isdigit():
        initial_age = float(age_header.strip())
    resident = now - entry.response_time
    response_delay = entry.response_time - entry.request_time
    return initial_age + response_delay + max(0.0, resident)


def evaluate(request: Request, entry: Optional[CacheEntry],
             now: float, shared: bool = False) -> Decision:
    """Decide how to satisfy ``request`` given what is stored.

    This is the status-quo browser behaviour that the paper's Figure 1b
    illustrates — the baseline CacheCatalyst is compared against.
    """
    req_cc = parse_cache_control(
        request.headers.get_joined("Cache-Control") or "")
    if req_cc.no_store or request.method in _UNSAFE_METHODS:
        return Decision(Disposition.UNCACHEABLE)
    if entry is None:
        return Decision(Disposition.MISS)
    resp_cc = entry.response.cache_control
    if resp_cc.no_store:
        # Shouldn't have been stored; treat as a miss.
        return Decision(Disposition.MISS)

    lifetime = freshness_lifetime(entry.response, shared=shared)
    age = current_age(entry, now)

    if req_cc.no_cache or resp_cc.no_cache:
        # no-cache permits storing but demands revalidation on every use;
        # must_revalidate (handled below) only forbids serving *past*
        # expiry, which this cache never does anyway.
        return Decision(Disposition.STALE, entry, lifetime, age)
    if lifetime is None:
        # No freshness info at all: always revalidate.
        return Decision(Disposition.STALE, entry, None, age)

    effective_lifetime = lifetime
    if req_cc.max_age is not None:
        effective_lifetime = min(effective_lifetime, float(req_cc.max_age))
    if age < effective_lifetime:
        return Decision(Disposition.FRESH, entry, lifetime, age)
    return Decision(Disposition.STALE, entry, lifetime, age)
