"""LRU cache store with Vary support and byte budgeting.

The store is deliberately transport-agnostic: both the browser HTTP cache
and the Service-Worker cache wrap it.  Keys are request URLs; a ``Vary``
response splits the slot into variants keyed by the named request headers.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Iterator, Optional

from ..http.messages import Request, Response
from .entry import CacheEntry
from .policy import may_store

__all__ = ["CacheStore"]


def _variant_key(vary: str, request: Request) -> tuple[tuple[str, str], ...]:
    """Secondary key from the request headers a response varies on."""
    names = sorted({name.strip().lower()
                    for name in vary.split(",") if name.strip()})
    return tuple((name, request.headers.get(name, "") or "")
                 for name in names)


class CacheStore:
    """URL-keyed response store with LRU eviction.

    ``max_bytes`` bounds the sum of entry footprints (``math.inf`` for
    unbounded, the default — browser disk caches are effectively unbounded
    at the scale of one page's resources).
    """

    def __init__(self, max_bytes: float = math.inf):
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.max_bytes = max_bytes
        # url -> variant_key -> entry; OrderedDict for LRU over urls+variant
        self._entries: OrderedDict[tuple[str, tuple], CacheEntry] = \
            OrderedDict()
        self._bytes = 0
        # statistics
        self.stores = 0
        self.evictions = 0
        self.lookups = 0
        self.hits = 0

    # -- primary operations ---------------------------------------------------
    def store(self, request: Request, response: Response,
              request_time: float, response_time: float) -> Optional[CacheEntry]:
        """Store the exchange if policy allows; returns the entry or None."""
        if not may_store(request, response):
            return None
        vary = response.headers.get("Vary", "")
        key = (request.url, _variant_key(vary, request))
        vary_values = dict(_variant_key(vary, request)) if vary else {}
        entry = CacheEntry(url=request.url, response=response.copy(),
                           request_time=request_time,
                           response_time=response_time,
                           vary_values=vary_values)
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= old.size_bytes
        self._entries[key] = entry
        self._bytes += entry.size_bytes
        self.stores += 1
        self._evict_if_needed()
        return entry

    def lookup(self, request: Request, now: float) -> Optional[CacheEntry]:
        """Find the stored variant matching ``request`` (no freshness check)."""
        self.lookups += 1
        for key in self._keys_for_url(request.url):
            entry = self._entries[key]
            if self._variant_matches(entry, request):
                entry.last_used = now
                entry.hits += 1
                self._entries.move_to_end(key)
                self.hits += 1
                return entry
        return None

    def invalidate(self, url: str) -> int:
        """Drop every variant stored for ``url``; returns count removed."""
        removed = 0
        for key in list(self._keys_for_url(url)):
            entry = self._entries.pop(key)
            self._bytes -= entry.size_bytes
            removed += 1
        return removed

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0

    # -- introspection ---------------------------------------------------------
    @property
    def entry_count(self) -> int:
        return len(self._entries)

    @property
    def byte_size(self) -> int:
        return self._bytes

    def urls(self) -> Iterator[str]:
        seen = set()
        for url, _ in self._entries:
            if url not in seen:
                seen.add(url)
                yield url

    def entries(self) -> Iterator[CacheEntry]:
        return iter(list(self._entries.values()))

    def __contains__(self, url: str) -> bool:
        return any(True for _ in self._keys_for_url(url))

    def __len__(self) -> int:
        return len(self._entries)

    # -- internals ----------------------------------------------------------------
    def _keys_for_url(self, url: str) -> Iterator[tuple[str, tuple]]:
        for key in self._entries:
            if key[0] == url:
                yield key

    @staticmethod
    def _variant_matches(entry: CacheEntry, request: Request) -> bool:
        for name, stored_value in entry.vary_values.items():
            if (request.headers.get(name, "") or "") != stored_value:
                return False
        return True

    def _evict_if_needed(self) -> None:
        while self._bytes > self.max_bytes and len(self._entries) > 1:
            _, entry = self._entries.popitem(last=False)
            self._bytes -= entry.size_bytes
            self.evictions += 1
