"""Command-line interface for the reproduction.

Thin wrappers over the experiment APIs so results are reachable without
writing Python::

    python -m repro figure1
    python -m repro figure3 --sites 6 --throughputs 8,60 --latencies 10,40
    python -m repro sweep --validate
    python -m repro sweep --bench --out benchmarks/results/analytic_sweep.txt
    python -m repro motivation
    python -m repro crosspage
    python -m repro bench --repeats 300
    python -m repro faultsweep --sites 4 --rates 0,0.05,0.1
    python -m repro visit --seed 7 --delay 1d --mbps 60 --rtt 40
    python -m repro trace /index.html --trace-out trace.json
    python -m repro serve --port 8080 --time-scale 3600
    python -m repro loadtest --clients 64 --duration 5 --preset flaky_5g

Results print to stdout; status lines (progress, artifact paths) go to
stderr through :mod:`repro.obs.log`, silenced by ``--quiet`` or
``REPRO_LOG_LEVEL=quiet``.  ``figure3`` accepts the same knobs as
:func:`repro.experiments.figure3.run_figure3`.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .obs.log import get_logger, set_level

__all__ = ["main", "build_parser"]

log = get_logger("cli")


def _float_list(text: str) -> tuple[float, ...]:
    try:
        return tuple(float(part) for part in text.split(",") if part)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number list: {text!r}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CacheCatalyst reproduction (HotNets '24)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress status lines on stderr "
                             "(results still print to stdout)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("figure1", help="the worked example's three timelines")

    fig3 = sub.add_parser("figure3", help="the PLT-reduction grid")
    fig3.add_argument("--sites", type=int, default=6,
                      help="corpus subsample size (default 6)")
    fig3.add_argument("--throughputs", type=_float_list,
                      default=(8.0, 60.0), help="Mbit/s list, e.g. 8,30,60")
    fig3.add_argument("--latencies", type=_float_list,
                      default=(10.0, 40.0, 100.0),
                      help="RTT ms list, e.g. 10,40,100")
    fig3.add_argument("--delays", default="1min,6h,1w",
                      help="revisit delays, e.g. 1min,6h,1w")
    fig3.add_argument("--churn", action="store_true",
                      help="realistic content churn instead of clones")
    fig3.add_argument("--parallel", action="store_true",
                      help="fan out over a process pool")

    sweep = sub.add_parser(
        "sweep",
        help="full-grid analytic PLT sweep (vectorized closed form); "
             "--validate replays a seeded subgrid through the DES, "
             "--bench writes the analytic_sweep BENCH artifact")
    sweep.add_argument("--sites", type=int, default=None,
                       help="corpus subsample size (default: full corpus)")
    sweep.add_argument("--throughputs", type=_float_list,
                       default=(8.0, 16.0, 30.0, 60.0),
                       help="Mbit/s list (default 8,16,30,60)")
    sweep.add_argument("--latencies", type=_float_list,
                       default=(10.0, 20.0, 40.0, 80.0, 100.0),
                       help="RTT ms list (default 10,20,40,80,100)")
    sweep.add_argument("--delays", default="1min,1h,6h,1d,1w",
                       help="revisit delays (default 1min,1h,6h,1d,1w)")
    sweep.add_argument("--backend", default="auto",
                       choices=("auto", "numpy", "python"),
                       help="force the engine backend (default auto)")
    sweep.add_argument("--out", default=None,
                       help="also write the grid report to this file")
    sweep.add_argument("--validate", action="store_true",
                       help="re-run a seeded sampled subgrid through the "
                            "DES and gate on rank correlation")
    sweep.add_argument("--validate-sites", type=int, default=4,
                       help="subgrid size for --validate (default 4)")
    sweep.add_argument("--min-rho", type=float, default=0.85,
                       help="rank-correlation floor for --validate "
                            "(default 0.85)")
    sweep.add_argument("--seed", type=int, default=2024,
                       help="workload seed for --bench/--validate")
    sweep.add_argument("--bench", action="store_true",
                       help="measure visit-estimates/s on both backends "
                            "and write the BENCH artifact instead of "
                            "sweeping")
    sweep.add_argument("--bench-out", default=None,
                       help="with --bench: artifact path (default "
                            "benchmarks/results/BENCH_PR8.json)")
    sweep.add_argument("--rounds", type=int, default=5,
                       help="with --bench: best-of rounds (default 5)")
    sweep.add_argument("--min-estimates", type=float, default=None,
                       help="with --bench: exit non-zero when the "
                            "measured estimates/s falls below this")

    fleet = sub.add_parser(
        "fleet",
        help="population-scale fleet pricing: Zipf popularity, cohort "
             "conditions, revisit mixtures; --validate gates the "
             "analytic backend against a sampled DES replay, --bench "
             "writes the population_fleet BENCH artifact")
    fleet.add_argument("--users", type=int, default=20_000,
                       help="population size (default 20000)")
    fleet.add_argument("--visits", type=int, default=1_000_000,
                       help="measured visits to price (default 1000000)")
    fleet.add_argument("--warmup", type=int, default=None,
                       help="warmup visits (default visits/4)")
    fleet.add_argument("--alpha", type=float, default=0.8,
                       help="Zipf popularity exponent (default 0.8)")
    fleet.add_argument("--rate", type=float, default=12.0,
                       help="visits per user per day (default 12)")
    fleet.add_argument("--bins", type=int, default=24,
                       help="delay-mixture quantization bins (default 24)")
    fleet.add_argument("--backend", default="auto",
                       choices=("auto", "numpy", "python"),
                       help="analytic backend (default auto)")
    fleet.add_argument("--seed", type=int, default=2024,
                       help="population seed (default 2024)")
    fleet.add_argument("--out", default=None,
                       help="also write the machine-readable fleet "
                            "payload (JSON) to this file")
    fleet.add_argument("--des", action="store_true",
                       help="also replay a sampled schedule through the "
                            "DES and report per-cohort percentiles")
    fleet.add_argument("--sample", type=int, default=24,
                       help="schedule sample size for --des/--validate "
                            "(default 24)")
    fleet.add_argument("--workers", type=int, default=None,
                       help="DES worker processes (0 = serial)")
    fleet.add_argument("--validate", action="store_true",
                       help="gate the analytic backend on Spearman rank "
                            "agreement with a sampled DES replay")
    fleet.add_argument("--min-rho", type=float, default=0.85,
                       help="rank-correlation floor for --validate "
                            "(default 0.85)")
    fleet.add_argument("--bench", action="store_true",
                       help="measure both backends on the million-user "
                            "bench population and write the BENCH "
                            "artifact instead of running")
    fleet.add_argument("--bench-out", default=None,
                       help="with --bench: artifact path (default "
                            "benchmarks/results/BENCH_PR10.json)")
    fleet.add_argument("--rounds", type=int, default=3,
                       help="with --bench: best-of rounds (default 3)")

    sub.add_parser("motivation", help="the §2.2 workload statistics")
    sub.add_parser("crosspage", help="first visits to inner pages")
    sub.add_parser("serverload",
                   help="origin request volume per mode (§6)")
    sub.add_parser("userweighted",
                   help="population-weighted revisit benefit")

    bench = sub.add_parser(
        "bench",
        help="wall-clock benchmarks (writes BENCH_*.json): server "
             "hot path by default, simulation core with --simcore")
    bench.add_argument("--simcore", action="store_true",
                       help="benchmark the simulation core (DES kernel, "
                            "PS pipe, measure_pair) instead of the "
                            "server hot path")
    bench.add_argument("--sites", type=int, default=3,
                       help="corpus subsample size (default 3)")
    bench.add_argument("--repeats", type=int, default=300,
                       help="warm repeats per site (default 300); with "
                            "--simcore, measure_pair iterations "
                            "(default then 30)")
    bench.add_argument("--seed", type=int, default=21)
    bench.add_argument("--out", default=None,
                       help="machine-readable output path (default "
                            "benchmarks/results/BENCH_PR3.json, or "
                            "BENCH_PR5.json with --simcore)")
    bench.add_argument("--min-speedup", type=float, default=None,
                       help="exit non-zero when the warm-path speedup "
                            "(or, with --simcore, the visits/s speedup "
                            "vs the pre-PR5 baseline) falls below this "
                            "factor")

    faults = sub.add_parser(
        "faultsweep",
        help="standard vs catalyst under injected network faults")
    faults.add_argument("--sites", type=int, default=4,
                        help="synthetic sites per cell (default 4)")
    faults.add_argument("--rates", type=_float_list,
                        default=(0.0, 0.02, 0.05, 0.10),
                        help="fault rates, e.g. 0,0.05,0.1")
    faults.add_argument("--mbps", type=float, default=60.0)
    faults.add_argument("--rtt", type=float, default=40.0)
    faults.add_argument("--seed", type=int, default=0)
    faults.add_argument("--timeout", type=float, default=3.0,
                        help="per-request watchdog seconds (default 3)")
    faults.add_argument("--retries", type=int, default=4,
                        help="retry budget per request (default 4)")
    faults.add_argument("--no-corruption", action="store_true",
                        help="skip the corrupted-map section")
    faults.add_argument("--out", default=None,
                        help="also write the report to this file")

    visit = sub.add_parser("visit", help="one cold+warm pair, all modes")
    visit.add_argument("--seed", type=int, default=7)
    visit.add_argument("--delay", default="1d")
    visit.add_argument("--mbps", type=float, default=60.0)
    visit.add_argument("--rtt", type=float, default=40.0)
    visit.add_argument("--waterfall", action="store_true",
                       help="print the warm catalyst waterfall")
    visit.add_argument("--trace-out", default=None,
                       help="also capture the catalyst pair as a Chrome "
                            "trace (Perfetto-loadable JSON) at this path")

    trace = sub.add_parser(
        "trace",
        help="trace one cold+warm pair across all layers")
    trace.add_argument("url", nargs="?", default="/index.html",
                       help="page path on the synthetic site "
                            "(default /index.html)")
    trace.add_argument("--seed", type=int, default=7)
    trace.add_argument("--delay", default="1d")
    trace.add_argument("--mbps", type=float, default=60.0)
    trace.add_argument("--rtt", type=float, default=40.0)
    trace.add_argument("--mode", default="catalyst",
                       choices=("no-cache", "standard", "catalyst"))
    trace.add_argument("--fault-rate", type=float, default=0.0,
                       help="mixed fault rate injected on the link "
                            "(makes retries visible in the trace)")
    trace.add_argument("--trace-out", default="trace.json",
                       help="Chrome trace JSON output path "
                            "(load in Perfetto / chrome://tracing)")
    trace.add_argument("--jsonl-out", default=None,
                       help="also write the span log as JSONL here")
    trace.add_argument("--har-out", default=None,
                       help="also write the warm visit's trace-enriched "
                            "HAR here")
    trace.add_argument("--flame-out", default=None,
                       help="also write a collapsed-stack self-time "
                            "flamegraph here (load in speedscope / "
                            "inferno / flamegraph.pl) and print the "
                            "self-time table")

    report = sub.add_parser("report",
                            help="bundle benchmark artifacts into HTML")
    report.add_argument("--results", default="benchmarks/results",
                        help="artifact directory")
    report.add_argument("--out", default="report.html")

    serve = sub.add_parser("serve",
                           help="run a Catalyst origin on localhost")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--seed", type=int, default=42)
    serve.add_argument("--time-scale", type=float, default=3600.0,
                       help="simulated seconds per wall second")
    serve.add_argument("--shards", type=int, default=1,
                       help="SO_REUSEPORT worker processes (default 1: "
                            "in-process, no fork)")
    serve.add_argument("--drain", type=float, default=5.0,
                       help="graceful-drain window on SIGTERM/SIGINT "
                            "seconds (default 5)")
    serve.add_argument("--max-inflight", type=int, default=None,
                       help="per-shard inflight cap; above it requests "
                            "are shed 503 + Retry-After")
    serve.add_argument("--max-connections", type=int, default=None,
                       help="per-shard open-connection cap")

    load = sub.add_parser(
        "loadtest",
        help="sustained-load chaos harness against the serving tier")
    load.add_argument("--shards", type=int, default=1,
                      help="SO_REUSEPORT worker processes (default 1)")
    load.add_argument("--clients", type=int, default=32,
                      help="concurrent asyncio clients (default 32)")
    load.add_argument("--duration", type=float, default=5.0,
                      help="measured seconds (default 5)")
    load.add_argument("--warmup", type=float, default=0.5,
                      help="unmeasured ramp seconds (default 0.5)")
    load.add_argument("--latency", type=float, default=0.02,
                      help="injected per-request service seconds "
                           "(default 0.02)")
    load.add_argument("--inflight-cap", type=int, default=8,
                      help="per-shard inflight cap (default 8)")
    load.add_argument("--max-connections", type=int, default=None,
                      help="per-shard open-connection cap")
    load.add_argument("--app", default="static",
                      choices=("static", "catalyst"),
                      help="origin app (default static: isolates the "
                           "serving tier from cache logic)")
    load.add_argument("--preset", default="none",
                      choices=("none", "flaky_5g", "lossy_wifi",
                               "captive_portal"),
                      help="client-side fault preset (default none)")
    load.add_argument("--seed", type=int, default=0)
    load.add_argument("--out", default=None,
                      help="write the manifest-stamped run JSON here")
    load.add_argument("--scaling", action="store_true",
                      help="run the 1-vs-4-shard sustained-rps bench "
                           "lane instead of a single run")
    load.add_argument("--bench-out", default=None,
                      help="with --scaling: artifact path (default "
                           "benchmarks/results/BENCH_PR7.json)")
    load.add_argument("--min-scaling", type=float, default=None,
                      help="with --scaling: exit non-zero when the "
                           "N-shard speedup falls below this factor")
    load.add_argument("--trace-out", default=None,
                      help="trace the run (W3C context through every "
                           "worker) and write one merged Perfetto "
                           "trace JSON here")
    load.add_argument("--live", action="store_true",
                      help="print a per-interval rps/shed ticker to "
                           "stderr while the swarm runs")
    load.add_argument("--timeseries-out", default=None,
                      help="stream per-interval registry deltas to "
                           "this JSONL file")
    load.add_argument("--telemetry-interval", type=float, default=None,
                      help="telemetry sampling interval seconds "
                           "(default: the tally interval, 0.25)")
    load.add_argument("--slo", action="store_true",
                      help="evaluate the stock SLO policy over the "
                           "run's time series; exit non-zero on breach")
    load.add_argument("--slo-p99-ms", type=float, default=250.0,
                      help="with --slo: p99 http.request_ms objective "
                           "(default 250)")
    load.add_argument("--slo-max-shed", type=float, default=0.5,
                      help="with --slo: max shed rate objective "
                           "(default 0.5 — shedding is expected under "
                           "overload)")
    load.add_argument("--slo-max-errors", type=float, default=0.05,
                      help="with --slo: max 5xx error ratio objective "
                           "(default 0.05)")
    return parser


def _cmd_figure1() -> int:
    from .experiments.figure1 import run_figure1
    print(run_figure1().format())
    return 0


def _cmd_figure3(args: argparse.Namespace) -> int:
    from .experiments.figure3 import run_figure3
    from .experiments.harness import fleet_summary
    from .netsim.clock import parse_duration
    from .obs import MetricsRegistry
    delays = tuple(parse_duration(part)
                   for part in args.delays.split(","))
    metrics = MetricsRegistry()
    result = run_figure3(sites=args.sites,
                         throughputs_mbps=args.throughputs,
                         latencies_ms=args.latencies,
                         delays_s=delays,
                         content_churn=args.churn,
                         parallel=args.parallel,
                         progress=lambda msg: log.info("progress",
                                                       step=msg),
                         metrics=metrics)
    print(result.format())
    fleet = fleet_summary(metrics)
    warm = fleet["plt_ms"].get("warm_ms", {})
    log.info("fleet-summary", pairs=fleet["pairs"],
             warm_p50_ms=round(warm.get("p50", 0.0), 1),
             warm_p90_ms=round(warm.get("p90", 0.0), 1),
             warm_p99_ms=round(warm.get("p99", 0.0), 1),
             cache_hit_ratio=round(fleet["cache_hit_ratio"], 3),
             warm_retries=fleet["warm_retries"])
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import pathlib

    from .experiments.sweep import run_sweep, validate_sweep
    from .netsim.clock import parse_duration

    if args.bench:
        return _cmd_sweep_bench(args)
    try:
        delays = tuple(parse_duration(part)
                       for part in args.delays.split(","))
        result = run_sweep(sites=args.sites,
                           throughputs_mbps=args.throughputs,
                           latencies_ms=args.latencies,
                           delays_s=delays,
                           backend=args.backend)
    except (ValueError, RuntimeError) as exc:
        log.error("sweep-invalid", detail=str(exc))
        return 2
    text = result.format()
    print(text)
    log.info("sweep-done", estimates=result.estimates,
             backend=result.backend,
             rate=f"{result.estimates_per_s:,.0f}/s")
    if args.out:
        path = pathlib.Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text + "\n")
        log.info("wrote-artifact", path=path)
    if args.validate:
        validation = validate_sweep(sites=args.validate_sites,
                                    min_rho=args.min_rho,
                                    backend=args.backend)
        print()
        print(validation.format())
        if not validation.passed:
            log.error("sweep-validation-failed",
                      rho=f"{validation.rho:.3f}",
                      required=f"{args.min_rho:g}")
            return 1
    return 0


def _cmd_sweep_bench(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from .experiments.sweep import (analytic_bench_payload,
                                    format_analytic_bench,
                                    run_analytic_bench)
    sites = args.sites if args.sites is not None else 40
    result = run_analytic_bench(sites=sites, seed=args.seed,
                                rounds=args.rounds)
    print(format_analytic_bench(result))
    path = pathlib.Path(args.bench_out
                        or "benchmarks/results/BENCH_PR8.json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(analytic_bench_payload(result), indent=2)
                    + "\n")
    log.info("wrote-artifact", path=path)
    if args.min_estimates is not None:
        measured = (result.vectorized_per_s
                    if result.vectorized_per_s is not None
                    else result.fallback_per_s)
        if measured < args.min_estimates:
            log.error("bench-throughput-below-threshold",
                      rate=f"{measured:,.0f}/s",
                      required=f"{args.min_estimates:,.0f}/s")
            return 1
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from .experiments.fleet import (default_population, fleet_payload,
                                    run_fleet_analytic, run_fleet_des,
                                    validate_fleet)
    from .workload.corpus import make_corpus

    if args.bench:
        return _cmd_fleet_bench(args)
    try:
        spec = default_population(users=args.users, measured=args.visits,
                                  warmup=args.warmup, alpha=args.alpha,
                                  rate_per_user_day=args.rate,
                                  seed=args.seed)
        corpus = make_corpus()
        result = run_fleet_analytic(spec, corpus, bins=args.bins,
                                    backend=args.backend)
    except (ValueError, RuntimeError) as exc:
        log.error("fleet-invalid", detail=str(exc))
        return 2
    print(result.format())
    log.info("fleet-done", visits=result.population_visits,
             backend=result.backend,
             rate=f"{result.visits_per_s:,.0f}/s")
    des = None
    if args.des:
        des = run_fleet_des(spec, corpus, sample=args.sample,
                            max_workers=args.workers)
        print()
        print(des.format())
    validation = None
    if args.validate:
        validation = validate_fleet(spec, corpus, sample=args.sample,
                                    min_rho=args.min_rho,
                                    backend=args.backend)
        print()
        print(validation.format())
    if args.out:
        path = pathlib.Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(
            fleet_payload(result, des, validation), indent=2) + "\n")
        log.info("wrote-artifact", path=path)
    if validation is not None and not validation.passed:
        log.error("fleet-validation-failed",
                  rho=f"{validation.rho:.3f}",
                  required=f"{args.min_rho:g}")
        return 1
    return 0


def _cmd_fleet_bench(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from .experiments.fleet import fleet_bench_payload, run_fleet_bench

    result = run_fleet_bench(bins=args.bins, rounds=args.rounds,
                             des_sample=args.sample, seed=args.seed)
    print(result.format())
    path = pathlib.Path(args.bench_out
                        or "benchmarks/results/BENCH_PR10.json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(fleet_bench_payload(result), indent=2)
                    + "\n")
    log.info("wrote-artifact", path=path)
    if not result.meets_floors:
        log.error("fleet-bench-below-floors")
        return 1
    return 0


def _cmd_motivation() -> int:
    from .experiments.motivation import measure_motivation
    print(measure_motivation().format())
    return 0


def _cmd_crosspage() -> int:
    from .experiments.cross_page import format_cross_page, run_cross_page
    print(format_cross_page(run_cross_page()))
    return 0


def _cmd_serverload() -> int:
    from .experiments.server_load import (format_server_load,
                                          run_server_load)
    print(format_server_load(run_server_load()))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.simcore:
        return _cmd_bench_simcore(args)
    import json
    import pathlib

    from .experiments.server_load import (format_hot_path,
                                          hot_path_bench_payload,
                                          run_hot_path)
    result = run_hot_path(sites=args.sites, repeats=args.repeats,
                          seed=args.seed)
    print(format_hot_path(result))
    path = pathlib.Path(args.out or "benchmarks/results/BENCH_PR3.json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(hot_path_bench_payload(result), indent=2)
                    + "\n")
    log.info("wrote-artifact", path=path)
    if not result.byte_identical:
        log.error("bench-divergence",
                  detail="cached and uncached responses diverged")
        return 1
    if args.min_speedup is not None \
            and result.warm_speedup < args.min_speedup:
        log.error("bench-speedup-below-threshold",
                  speedup=f"{result.warm_speedup:.1f}x",
                  required=f"{args.min_speedup:g}x")
        return 1
    return 0


def _cmd_bench_simcore(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from .experiments.simcore import (format_simcore, run_simcore,
                                      simcore_bench_payload)
    # --repeats keeps its CLI meaning of "iterations of the unit of
    # work": here that's measure_pair pairs (300 would take minutes, so
    # the hot-path default is scaled down when the user didn't override).
    pairs = args.repeats if args.repeats != 300 else 30
    result = run_simcore(pairs=pairs, seed=args.seed)
    print(format_simcore(result))
    path = pathlib.Path(args.out or "benchmarks/results/BENCH_PR5.json")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(simcore_bench_payload(result), indent=2)
                    + "\n")
    log.info("wrote-artifact", path=path)
    if args.min_speedup is not None:
        speedup = result.speedup_vs_pre_pr5("visits_per_s")
        if speedup < args.min_speedup:
            log.error("bench-speedup-below-threshold",
                      speedup=f"{speedup:.1f}x",
                      required=f"{args.min_speedup:g}x")
            return 1
    return 0


def _cmd_userweighted() -> int:
    from .experiments.user_weighted import run_user_weighted
    print(run_user_weighted().format())
    return 0


def _cmd_faultsweep(args: argparse.Namespace) -> int:
    from .experiments.faults import run_fault_sweep
    try:
        result = run_fault_sweep(
            rates=args.rates, mbps=args.mbps, rtt_ms=args.rtt,
            sites=args.sites, seed=args.seed, timeout_s=args.timeout,
            max_retries=args.retries,
            include_corruption=not args.no_corruption)
    except ValueError as exc:
        log.error("faultsweep-invalid", detail=str(exc))
        return 2
    text = result.format()
    print(text)
    if args.out:
        import pathlib
        path = pathlib.Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text + "\n")
        log.info("wrote-artifact", path=path)
    return 0 if result.acceptance_holds else 1


def _cmd_visit(args: argparse.Namespace) -> int:
    from .browser.trace import render_waterfall
    from .core.catalyst import run_visit_sequence
    from .core.modes import CachingMode, build_mode
    from .netsim.clock import parse_duration
    from .netsim.link import NetworkConditions
    from .obs import Tracer, to_chrome_trace_json
    from .workload.sitegen import generate_site

    site = generate_site(f"https://cli{args.seed}.example", seed=args.seed)
    conditions = NetworkConditions.of(args.mbps, args.rtt)
    delay_s = parse_duration(args.delay)
    print(f"site seed {args.seed}: {site.index.resource_count} resources; "
          f"{conditions.describe()}; revisit after {args.delay}\n")
    warm_catalyst = None
    tracer = Tracer() if args.trace_out else None
    for mode in (CachingMode.NO_CACHE, CachingMode.STANDARD,
                 CachingMode.CATALYST):
        setup = build_mode(mode, site)
        outcomes = run_visit_sequence(
            setup, conditions, [0.0, delay_s],
            tracer=tracer if mode is CachingMode.CATALYST else None)
        cold, warm = outcomes[0].result, outcomes[1].result
        print(f"{mode.value:>9}: cold {cold.plt_ms:7.1f} ms   "
              f"warm {warm.plt_ms:7.1f} ms   "
              f"({warm.bytes_down:,} warm bytes)")
        if mode is CachingMode.CATALYST:
            warm_catalyst = warm
    if args.waterfall and warm_catalyst is not None:
        print()
        print(render_waterfall(warm_catalyst))
    if tracer is not None:
        import pathlib
        path = pathlib.Path(args.trace_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(to_chrome_trace_json(tracer) + "\n")
        log.info("wrote-trace", path=path, spans=len(tracer),
                 trace_id=tracer.trace_id)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import pathlib

    from .core.modes import CachingMode
    from .experiments.tracing import capture_visit_trace
    from .netsim.clock import parse_duration
    from .netsim.faults import FaultPlan
    from .netsim.link import NetworkConditions

    fault_plan = (FaultPlan.mixed(args.fault_rate, seed=args.seed)
                  if args.fault_rate > 0 else None)
    capture = capture_visit_trace(
        page_url=args.url,
        mode=CachingMode(args.mode),
        seed=args.seed,
        conditions=NetworkConditions.of(args.mbps, args.rtt),
        visit_times_s=[0.0, parse_duration(args.delay)],
        fault_plan=fault_plan)
    summary = capture.summary()
    print(f"trace {summary['trace_id']}: {summary['spans_retained']} "
          f"spans across {len(summary['categories'])} layers "
          f"({', '.join(summary['categories'])})")
    print(f"visits: cold {summary['plt_ms'][0]} ms, "
          + ", ".join(f"warm {plt} ms" for plt in summary['plt_ms'][1:]))
    path = pathlib.Path(args.trace_out)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(capture.chrome_trace_json() + "\n")
    log.info("wrote-trace", path=path, spans=summary["spans_retained"],
             trace_id=summary["trace_id"])
    if args.jsonl_out:
        jsonl_path = pathlib.Path(args.jsonl_out)
        jsonl_path.parent.mkdir(parents=True, exist_ok=True)
        jsonl_path.write_text(capture.jsonl())
        log.info("wrote-jsonl", path=jsonl_path)
    if args.har_out:
        import json
        har_path = pathlib.Path(args.har_out)
        har_path.parent.mkdir(parents=True, exist_ok=True)
        har_path.write_text(json.dumps(capture.har(), indent=2) + "\n")
        log.info("wrote-har", path=har_path)
    if args.flame_out:
        flame_path = pathlib.Path(args.flame_out)
        flame_path.parent.mkdir(parents=True, exist_ok=True)
        flame = capture.flamegraph()
        flame_path.write_text(flame)
        log.info("wrote-flame", path=flame_path,
                 stacks=len(flame.splitlines()))
        print()
        print("self time by span (sim clock):")
        print(capture.self_time_table())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import pathlib

    from .experiments.report_html import write_report
    results = pathlib.Path(args.results)
    if not results.is_dir():
        log.error("missing-artifact-dir", path=results,
                  hint="run `pytest benchmarks/ --benchmark-only` first")
        return 1
    out = write_report(results, pathlib.Path(args.out))
    print(f"wrote {out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.shards > 1:
        return _cmd_serve_fleet(args)
    import asyncio
    import signal

    from .http.aserver import STATS_PATH, AsyncHttpServer
    from .obs import MetricsRegistry, Tracer
    from .server.adapter import as_async_handler
    from .server.catalyst import CatalystServer
    from .server.site import OriginSite
    from .workload.sitegen import generate_site

    site = OriginSite(generate_site(f"https://cli{args.seed}.example",
                                    seed=args.seed),
                      materialize_fully=True)
    catalyst = CatalystServer(site)
    handler = as_async_handler(catalyst, time_scale=args.time_scale)

    async def serve() -> None:
        server = AsyncHttpServer(
            handler, port=args.port, tracer=Tracer(),
            metrics=MetricsRegistry(),
            max_inflight=args.max_inflight,
            max_connections=args.max_connections,
            shed_seed=args.seed,
            stats_source=catalyst.stats)
        await server.start()
        print(f"Catalyst origin on {server.base_url} "
              f"(x{args.time_scale:g} time; Ctrl-C to stop; "
              f"stats at {STATS_PATH})")
        loop = asyncio.get_running_loop()
        stopping = asyncio.Event()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(sig, stopping.set)
        await stopping.wait()
        report = await server.stop(drain_s=args.drain)
        log.info("drained", **report)

    asyncio.run(serve())
    print("\nbye")
    return 0


def _cmd_serve_fleet(args: argparse.Namespace) -> int:
    import signal
    import time

    from .http.aserver import STATS_PATH
    from .http.fleet import FleetConfig, ServerFleet

    config = FleetConfig(
        port=args.port, shards=args.shards, seed=args.seed,
        app="catalyst", time_scale=args.time_scale,
        max_inflight=args.max_inflight,
        max_connections=args.max_connections)
    fleet = ServerFleet(config).start()
    print(f"Catalyst origin on {fleet.base_url} "
          f"({args.shards} SO_REUSEPORT shards; Ctrl-C to stop; "
          f"per-shard stats at {STATS_PATH})")

    def _interrupt(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _interrupt)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        reports = fleet.stop(drain_s=args.drain)
        log.info("fleet-drained", workers=len(reports))
    print("\nbye")
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from .experiments.load_test import (format_load_test, format_scaling,
                                        load_test_payload, run_load_test,
                                        run_scaling_bench,
                                        scaling_bench_payload)
    if args.scaling:
        result = run_scaling_bench(
            (1, max(2, args.shards)) if args.shards > 1 else (1, 4),
            clients=args.clients, duration_s=args.duration,
            warmup_s=args.warmup, seed=args.seed, app=args.app,
            latency_s=args.latency, max_inflight=args.inflight_cap)
        print(format_scaling(result))
        path = pathlib.Path(args.bench_out
                            or "benchmarks/results/BENCH_PR7.json")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(scaling_bench_payload(result),
                                   indent=2) + "\n")
        log.info("wrote-artifact", path=path)
        if args.min_scaling is not None \
                and result.scaling_x < args.min_scaling:
            log.error("scaling-below-threshold",
                      scaling=f"{result.scaling_x:.2f}x",
                      required=f"{args.min_scaling:g}x")
            return 1
        return 0
    objectives = None
    if args.slo:
        from .obs.slo import default_loadtest_policy
        objectives = default_loadtest_policy(
            p99_ms=args.slo_p99_ms, max_shed_rate=args.slo_max_shed,
            max_error_ratio=args.slo_max_errors)
    result = run_load_test(
        shards=args.shards, clients=args.clients,
        duration_s=args.duration, warmup_s=args.warmup, seed=args.seed,
        app=args.app, latency_s=args.latency,
        max_inflight=args.inflight_cap,
        max_connections=args.max_connections,
        preset=None if args.preset == "none" else args.preset,
        inprocess=args.shards == 1,
        trace=args.trace_out is not None,
        telemetry_interval_s=args.telemetry_interval,
        timeseries_path=args.timeseries_out,
        slo=objectives, live=args.live)
    print(format_load_test(result))
    if args.trace_out:
        from .experiments.tracing import fleet_chrome_trace_json
        path = pathlib.Path(args.trace_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(fleet_chrome_trace_json(result.spans, indent=2))
        log.info("wrote-trace", path=path, spans=len(result.spans))
    if args.timeseries_out:
        log.info("wrote-timeseries", path=args.timeseries_out,
                 intervals=len(result.timeseries))
    if args.out:
        path = pathlib.Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(load_test_payload(result), indent=2)
                        + "\n")
        log.info("wrote-artifact", path=path)
    if result.slo_report is not None and not result.slo_report.passed:
        log.error("slo-breach")
        return 1
    return 0 if result.errors == 0 else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.quiet:
        set_level("quiet")
    if args.command == "figure1":
        return _cmd_figure1()
    if args.command == "figure3":
        return _cmd_figure3(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "fleet":
        return _cmd_fleet(args)
    if args.command == "motivation":
        return _cmd_motivation()
    if args.command == "crosspage":
        return _cmd_crosspage()
    if args.command == "serverload":
        return _cmd_serverload()
    if args.command == "userweighted":
        return _cmd_userweighted()
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "faultsweep":
        return _cmd_faultsweep(args)
    if args.command == "visit":
        return _cmd_visit(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "loadtest":
        return _cmd_loadtest(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
