"""repro — reproduction of "Rethinking Web Caching: An Optimization for
the Latency-Constrained Internet" (HotNets '24).

The package implements CacheCatalyst — proactive delivery of resource
validation tokens (ETags) with the base HTML so browsers reuse unchanged
cached content with **zero revalidation round trips** — together with
every substrate the paper's evaluation needs: an HTTP stack, RFC 9111
caching, an HTML/CSS content model, a discrete-event network simulator, a
headless-browser page-load model, a synthetic top-100-site corpus, and
the baselines it is compared against (status-quo caching, no-cache,
HTTP/2 server push, remote dependency resolution).

Quick start::

    from repro import Catalyst, NetworkConditions
    from repro.workload import generate_site

    site = generate_site("https://example.test", seed=1)
    catalyst = Catalyst.for_site(site)
    outcomes = catalyst.visit_sequence(
        NetworkConditions.of(60, 40), delays=["1h"])
    print(outcomes[-1].plt_ms)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from .browser import BrowserConfig, BrowserSession, PageLoadResult
from .core import (Catalyst, CachingMode, EtagConfig, build_mode,
                   estimate_plt, estimate_reduction, run_visit_sequence)
from .netsim import NetworkConditions, Simulator
from .server import CatalystConfig, CatalystServer, OriginSite, StaticServer
from .workload import Corpus, generate_site, make_corpus

__version__ = "0.1.0"

__all__ = [
    "Catalyst", "CachingMode", "EtagConfig", "build_mode",
    "run_visit_sequence", "estimate_plt", "estimate_reduction",
    "BrowserSession", "BrowserConfig", "PageLoadResult",
    "NetworkConditions", "Simulator",
    "OriginSite", "StaticServer", "CatalystServer", "CatalystConfig",
    "Corpus", "make_corpus", "generate_site",
    "__version__",
]
