#!/usr/bin/env python3
"""Offline mode: the page that loads with the origin unplugged.

The paper (§3) notes a Service Worker can answer "when the origin server
is not accessible (for example, in offline mode)".  This demo warms a
CacheCatalyst client with two online visits, then kills the origin and
loads the page again — watch the waterfall.

Run:  python examples/offline_demo.py
"""

from repro.browser.fetcher import OriginUnreachable
from repro.browser.trace import render_waterfall
from repro.core.modes import CachingMode, build_mode
from repro.netsim.clock import HOUR
from repro.netsim.link import Link, NetworkConditions
from repro.netsim.sim import Simulator
from repro.workload.sitegen import freeze_site, generate_site

CONDITIONS = NetworkConditions.of(60, 40)


def main() -> None:
    site = freeze_site(generate_site("https://offline.example", seed=23,
                                     median_resources=18))
    setup = build_mode(CachingMode.CATALYST, site)
    sim = Simulator()

    def visit(handler, at_time, label):
        sim.run(until=at_time)
        link = Link(sim, CONDITIONS)
        result = sim.run_process(setup.session.load(
            sim, link, handler, "/index.html", mode_label=label))
        print(f"{label:>22}: PLT {result.plt_ms:7.1f} ms, "
              f"{result.request_count} network requests")
        return result

    print("two online visits fill the Service Worker cache...\n")
    visit(setup.handler, 0.0, "online (cold)")
    visit(setup.handler, 1 * HOUR, "online (warm)")

    def origin_down(request, at_time):
        raise OriginUnreachable(request.url)

    print("\n-- origin unplugged --\n")
    offline = visit(origin_down, 2 * HOUR, "OFFLINE")
    print()
    print(render_waterfall(offline))
    failed = [e for e in offline.events if e.status == 504]
    print(f"\n{len(failed)} personalised (no-store) resources failed "
          "with 504 — they were never cached, by design;")
    print("everything else came straight from the Service Worker cache.")

    print("\nfor comparison, the same outage against a standard browser:")
    plain = build_mode(CachingMode.STANDARD, site)
    sim2 = Simulator()
    link = Link(sim2, CONDITIONS)
    sim2.run_process(plain.session.load(
        sim2, link, plain.handler, "/index.html", mode_label="standard"))
    sim2.run(until=HOUR)
    link = Link(sim2, CONDITIONS)
    try:
        sim2.run_process(plain.session.load(
            sim2, link, origin_down, "/index.html",
            mode_label="standard"))
    except OriginUnreachable:
        print("  -> OriginUnreachable: the load dies on the first "
              "revalidation.")


if __name__ == "__main__":
    main()
