#!/usr/bin/env python3
"""Quickstart: measure CacheCatalyst against status-quo caching.

Generates one synthetic website, loads it cold, then revisits after
several delays under median-5G network conditions (60 Mbit/s, 40 ms RTT
— the paper's anchor condition), comparing the proposed approach with
standard HTTP caching.

Run:  python examples/quickstart.py
"""

from repro import Catalyst, NetworkConditions
from repro.core.catalyst import run_visit_sequence
from repro.core.modes import CachingMode, build_mode
from repro.netsim.clock import parse_duration
from repro.workload import generate_site

CONDITIONS = NetworkConditions.of(60, 40, label="median 5G")
DELAYS = ["1 min", "1 h", "6 h", "1 d", "1 week"]


def main() -> None:
    site = generate_site("https://quickstart.example", seed=7)
    page = site.index
    print(f"site: {site.origin}")
    print(f"  {page.resource_count} resources, "
          f"{page.total_bytes / 1e6:.1f} MB total\n")

    print(f"network: {CONDITIONS.describe()} "
          f"({CONDITIONS.downlink_mbps:g} Mbit/s, "
          f"{CONDITIONS.rtt_ms:g} ms RTT)\n")

    header = f"{'revisit':>8} | {'standard':>10} | {'catalyst':>10} | saving"
    print(header)
    print("-" * len(header))
    for delay in DELAYS:
        delay_s = parse_duration(delay)
        plts = {}
        for mode in (CachingMode.STANDARD, CachingMode.CATALYST):
            setup = build_mode(mode, site)
            outcomes = run_visit_sequence(setup, CONDITIONS,
                                          [0.0, delay_s])
            plts[mode] = outcomes[1].result.plt_ms
        std = plts[CachingMode.STANDARD]
        cat = plts[CachingMode.CATALYST]
        print(f"{delay:>8} | {std:8.0f}ms | {cat:8.0f}ms | "
              f"{(std - cat) / std:6.1%}")

    # The one-object facade, for when you just want numbers:
    catalyst = Catalyst.for_site(site)
    comparison = catalyst.compare_with_standard(CONDITIONS, "1 d")
    print(f"\nfacade check (1 d): {comparison}")


if __name__ == "__main__":
    main()
