#!/usr/bin/env python3
"""A miniature Figure 3: the throughput × latency sweep.

Sweeps a small corpus over network conditions and prints the average
warm-visit PLT reduction of CacheCatalyst vs standard caching — the same
grid as the paper's Figure 3, at example scale (the benchmark suite runs
the full version).

Run:  python examples/network_sweep.py            (about a minute)
      python examples/network_sweep.py --churn    (realistic-churn variant)
"""

import sys
import time

from repro.experiments.figure3 import run_figure3
from repro.netsim.clock import HOUR, MINUTE, WEEK


def main() -> None:
    churn = "--churn" in sys.argv
    label = "realistic churn" if churn else "frozen clones (paper method)"
    print(f"content model: {label}")
    print("sweeping 4 sites x 6 conditions x 3 delays "
          "(cold+warm, standard+catalyst)...\n")
    started = time.time()
    result = run_figure3(
        sites=4,
        throughputs_mbps=(8.0, 30.0, 60.0),
        latencies_ms=(10.0, 40.0),
        delays_s=(MINUTE, 6 * HOUR, WEEK),
        content_churn=churn,
    )
    print(result.format())
    print(f"\n({time.time() - started:.0f} s wall time; "
          "the paper reports ~30 % on the full grid)")


if __name__ == "__main__":
    main()
