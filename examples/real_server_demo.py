#!/usr/bin/env python3
"""CacheCatalyst over real sockets.

Starts the Catalyst origin server on localhost (plain asyncio TCP — the
very same server object the simulator measures), then plays the client
side by hand so every moving part is visible:

1. GET /index.html           -> 200 with X-Etag-Config + injected SW
2. GET a stapled resource    -> 200 whose ETag matches the stapled token
3. GET the service worker    -> the interception script itself
4. conditional revisit       -> 304 Not-Modified *still carrying the map*

The wall clock is scaled so each real second ages the site by an hour —
the same trick as the paper's advance-the-system-clock methodology.

Run:  python examples/real_server_demo.py
"""

import asyncio
import json
import textwrap

from repro.http.aclient import AsyncHttpClient
from repro.http.aserver import AsyncHttpServer
from repro.http.headers import Headers
from repro.http.messages import Request
from repro.server.adapter import as_async_handler
from repro.server.catalyst import CatalystServer
from repro.server.site import OriginSite
from repro.workload import generate_site


async def demo() -> None:
    site = OriginSite(generate_site("https://demo.example", seed=42,
                                    median_resources=20),
                      materialize_fully=True)
    catalyst = CatalystServer(site)
    handler = as_async_handler(catalyst, time_scale=3600.0)

    async with AsyncHttpServer(handler) as server:
        print(f"origin listening on {server.base_url} "
              "(1 wall second = 1 simulated hour)\n")
        async with AsyncHttpClient() as client:
            base = server.base_url

            # 1. first visit: base HTML
            html = (await client.get(f"{base}/index.html")).response
            config = json.loads(html.headers["X-Etag-Config"])
            print(f"GET /index.html -> {html.status}, "
                  f"{len(html.body):,} bytes")
            print(f"  X-Etag-Config: {len(config)} stapled tokens, e.g.")
            for url, tag in list(config.items())[:3]:
                print(f"    {url} -> {tag}")
            assert "cache-catalyst-register" in html.body.decode()
            print("  SW registration snippet: injected ✔\n")

            # 2. a stapled subresource
            url, stapled_tag = next(iter(config.items()))
            asset = (await client.get(base + url)).response
            print(f"GET {url} -> {asset.status}")
            print(f"  live ETag {asset.etag.opaque} == stapled "
                  f"{stapled_tag}: {asset.etag.opaque == stapled_tag}\n")

            # 3. the service worker script
            sw = (await client.get(
                f"{base}/cache-catalyst-sw.js")).response
            first_line = sw.body.decode().strip().splitlines()[0]
            print(f"GET /cache-catalyst-sw.js -> {sw.status}, "
                  f"{len(sw.body)} bytes")
            print(f"  {first_line}\n")

            # 4. revisit "two hours later" (2 wall seconds)
            await asyncio.sleep(2.1)
            revisit = (await client.request(Request(
                url=f"{base}/index.html",
                headers=Headers({"If-None-Match": html.headers["ETag"]}))
            )).response
            print(f"revisit GET /index.html (If-None-Match) -> "
                  f"{revisit.status}")
            if revisit.status == 304:
                fresh_map = json.loads(revisit.headers["X-Etag-Config"])
                print(textwrap.fill(
                    "  304 Not Modified, zero body bytes — and the "
                    f"response still staples {len(fresh_map)} fresh "
                    "tokens, so the Service Worker can answer every "
                    "unchanged subresource without a single further "
                    "round trip.", width=72))
            else:
                print("  the homepage itself changed in the simulated "
                      "2 hours; a fresh copy (with a fresh map) arrived")


if __name__ == "__main__":
    asyncio.run(demo())
