#!/usr/bin/env python3
"""The paper's Figure 1, step by step.

Builds the exact five-resource example page (index.html, a.css, b.js,
c.js, d.jpg with the paper's cache headers), then prints the three
timelines:

  (a) the cold first visit,
  (b) a status-quo revisit two hours later — note b.js's wasted
      revalidation round trip,
  (c) the CacheCatalyst revisit — unchanged resources served from the
      Service Worker cache with zero round trips.

Run:  python examples/figure1_walkthrough.py
"""

from repro.experiments.figure1 import run_figure1
from repro.netsim.link import NetworkConditions


def main() -> None:
    conditions = NetworkConditions.of(60, 40)
    print(f"network: {conditions.downlink_mbps:g} Mbit/s, "
          f"{conditions.rtt_ms:g} ms RTT")
    print("headers: a.css max-age=1w | b.js no-cache | "
          "c.js max-age=1d | d.jpg max-age=1h")
    print("between visits, only d.jpg's content actually changes\n")

    panels = run_figure1(conditions)
    print(panels.format())

    saved = panels.standard_revisit.plt_ms - panels.catalyst_revisit.plt_ms
    print(f"\nround trips paid on the revisit: "
          f"standard={panels.standard_revisit.rtts_paid:g}, "
          f"catalyst={panels.catalyst_revisit.rtts_paid:g}")
    print(f"PLT saved by eliminating them: {saved:.1f} ms "
          f"({saved / panels.standard_revisit.plt_ms:.0%})")


if __name__ == "__main__":
    main()
