#!/usr/bin/env python3
"""Bring your own website: hand-built content through CacheCatalyst.

The corpus generator is only a stand-in for the paper's cloned top-100
homepages — the serving and measurement stack works on any
:class:`SiteSpec`.  This example builds a small blog by hand (every
resource, header policy and change period chosen explicitly), then shows
what each caching approach does to its revisit PLT, including the
session-recording extension that covers JS-fetched resources.

Run:  python examples/custom_site.py
"""

from repro.core.catalyst import run_visit_sequence
from repro.core.modes import CachingMode, build_mode
from repro.html.parser import ResourceKind
from repro.netsim.clock import DAY, HOUR, WEEK
from repro.netsim.link import NetworkConditions
from repro.workload.headers_model import HeaderPolicy
from repro.workload.sitegen import PageSpec, ResourceSpec, SiteSpec


def build_blog() -> SiteSpec:
    """A blog: stable theme, daily articles, a personalised comments feed."""
    theme_css = ResourceSpec(
        url="/theme.css", kind=ResourceKind.STYLESHEET, size_bytes=28_000,
        policy=HeaderPolicy(mode="no-cache"),      # "might change someday"
        change_period_s=26 * WEEK, content_seed=1,
        discovered_via="html", blocking=True,
        children=("/fonts/serif.woff2", "/img/header.png"))
    serif = ResourceSpec(
        url="/fonts/serif.woff2", kind=ResourceKind.FONT, size_bytes=60_000,
        policy=HeaderPolicy(mode="max-age", ttl_s=DAY),  # conservative!
        change_period_s=float("inf"), content_seed=2,
        discovered_via="css", parent="/theme.css")
    header_img = ResourceSpec(
        url="/img/header.png", kind=ResourceKind.IMAGE, size_bytes=90_000,
        policy=HeaderPolicy(mode="max-age", ttl_s=HOUR),
        change_period_s=8 * WEEK, content_seed=3,
        discovered_via="css", parent="/theme.css")
    app_js = ResourceSpec(
        url="/app.js", kind=ResourceKind.SCRIPT, size_bytes=45_000,
        policy=HeaderPolicy(mode="none"),          # forgot headers entirely
        change_period_s=2 * WEEK, content_seed=4,
        discovered_via="html", blocking=True,
        children=("/api/comments.json",))
    comments = ResourceSpec(
        url="/api/comments.json", kind=ResourceKind.FETCH, size_bytes=4_000,
        policy=HeaderPolicy(mode="no-store"),      # personalised
        change_period_s=300.0, content_seed=5,
        discovered_via="js", parent="/app.js", dynamic=True)
    hero = ResourceSpec(
        url="/img/hero.jpg", kind=ResourceKind.IMAGE, size_bytes=200_000,
        policy=HeaderPolicy(mode="max-age", ttl_s=6 * HOUR),
        change_period_s=DAY, content_seed=6, discovered_via="html")

    page = PageSpec(
        url="/index.html", html_size_bytes=18_000,
        html_change_period_s=12 * 3600.0, html_content_seed=7,
        html_refs=("/theme.css", "/app.js", "/img/hero.jpg"),
        resources={spec.url: spec for spec in
                   (theme_css, serif, header_img, app_js, comments, hero)})
    return SiteSpec(origin="https://blog.example", seed=0,
                    pages={"/index.html": page})


def main() -> None:
    site = build_blog()
    conditions = NetworkConditions.of(60, 40)
    print(f"{site.origin}: {site.index.resource_count} resources, "
          f"{site.index.total_bytes / 1000:.0f} kB\n")

    print(f"{'mode':>18} | {'cold':>7} | {'revisit +1d':>11} | sources")
    print("-" * 72)
    for mode in (CachingMode.NO_CACHE, CachingMode.STANDARD,
                 CachingMode.CATALYST, CachingMode.CATALYST_SESSIONS):
        setup = build_mode(mode, site)
        # three visits so the session recording has a chance to kick in
        outcomes = run_visit_sequence(setup, conditions,
                                      [0.0, DAY, 2 * DAY])
        warm = outcomes[-1].result
        sources = ", ".join(
            f"{source.value}:{count}"
            for source, count in sorted(warm.count_by_source().items(),
                                        key=lambda kv: kv[0].value))
        print(f"{mode.value:>18} | {outcomes[0].result.plt_ms:5.0f}ms"
              f" | {warm.plt_ms:9.0f}ms | {sources}")

    print("\nreading the last column: 'sw-cache' entries were served with")
    print("zero round trips because the server stapled their current ETags")
    print("onto the base HTML; 'catalyst-sessions' additionally covers the")
    print("JS-fetched /api resource's *tokens* once a visit recorded it.")


if __name__ == "__main__":
    main()
