#!/usr/bin/env python3
"""Measure CacheCatalyst on *your* website, from a HAR capture.

Workflow:

1. Open your page in a browser, devtools → Network → "Save all as HAR".
2. ``python examples/har_import_demo.py mypage.har``
3. Read the table: what the proposed caching scheme would do to your
   revisit PLT under median-5G conditions.

Run without arguments to see it on a bundled synthetic capture.
"""

import json
import sys

from repro.core.catalyst import run_visit_sequence
from repro.core.modes import CachingMode, build_mode
from repro.netsim.clock import DAY, HOUR, MINUTE
from repro.netsim.link import NetworkConditions
from repro.workload.har_import import site_from_har

CONDITIONS = NetworkConditions.of(60, 40, label="median 5G")

_DEMO_ENTRIES = [
    ("/", "text/html", 28_000, "no-cache"),
    ("/static/site.css", "text/css", 14_000, "max-age=600"),
    ("/static/vendor.js", "application/javascript", 120_000, None),
    ("/static/app.js", "application/javascript", 60_000, "no-cache"),
    ("/static/hero.webp", "image/webp", 180_000, "max-age=3600"),
    ("/static/icons.svg", "image/svg+xml", 9_000, None),
    ("/static/brand.woff2", "font/woff2", 44_000,
     "max-age=31536000, immutable"),
    ("/api/session", "application/json", 2_000, "no-store"),
]


def demo_har() -> dict:
    entries = []
    for path, mime, size, cache_control in _DEMO_ENTRIES:
        headers = ([{"name": "Cache-Control", "value": cache_control}]
                   if cache_control else [])
        entries.append({
            "request": {"method": "GET",
                        "url": f"https://your-site.example{path}"},
            "response": {"status": 200, "headers": headers,
                         "content": {"size": size, "mimeType": mime}},
        })
    return {"log": {"version": "1.2", "entries": entries}}


def main() -> None:
    if len(sys.argv) > 1:
        with open(sys.argv[1]) as handle:
            har = json.load(handle)
        print(f"imported {sys.argv[1]}")
    else:
        har = demo_har()
        print("no HAR given — using the bundled demo capture")

    site = site_from_har(har)
    page = site.index
    print(f"{site.origin}: {page.resource_count} same-origin resources, "
          f"{page.total_bytes / 1000:.0f} kB\n")

    by_mode = {}
    for policy_mode in ("no-store", "no-cache", "none", "max-age"):
        count = sum(1 for s in page.iter_resources()
                    if s.policy.mode == policy_mode)
        if count:
            by_mode[policy_mode] = count
    print(f"header mix: {by_mode}\n")

    print(f"{'revisit':>8} | {'standard':>9} | {'catalyst':>9} | saving")
    print("-" * 48)
    for delay_s, label in ((MINUTE, "1 min"), (HOUR, "1 h"),
                           (DAY, "1 d")):
        plts = {}
        for mode in (CachingMode.STANDARD, CachingMode.CATALYST):
            setup = build_mode(mode, site)
            outcomes = run_visit_sequence(setup, CONDITIONS,
                                          [0.0, delay_s])
            plts[mode] = outcomes[1].result.plt_ms
        std, cat = plts[CachingMode.STANDARD], plts[CachingMode.CATALYST]
        print(f"{label:>8} | {std:7.0f}ms | {cat:7.0f}ms | "
              f"{(std - cat) / std:6.1%}")

    print("\n(change behaviour is drawn from the calibrated churn model —")
    print(" a single HAR cannot say how often your content changes)")


if __name__ == "__main__":
    main()
